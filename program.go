package spmspv

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"time"

	"spmspv/internal/dataflow"
)

// Executor is the transport-agnostic serving surface: the same
// Do/Run pair is implemented by the in-process Store, and by Client
// over HTTP — so algorithm code written against an Executor (see
// ProgramBFS) runs unchanged locally or remotely, and errors surface
// as the same *WireError values either way.
type Executor interface {
	// Do executes one multiply request.
	Do(req *Request) (*Response, error)
	// Run executes a multi-op program.
	Run(p *Program) (*ProgramResponse, error)
}

// Program is the multi-op wire contract: a dataflow program whose ops'
// inputs may reference prior ops' outputs ("$0"-style refs), so an
// iterative kernel — a BFS level loop, a k-step random walk, a PageRank
// power iteration — runs server-side without shipping frontiers back
// and forth. Intermediate results live on the server as Frontiers
// (list + lazily shared bitmap), so a mask_ref consumes the producing
// op's bitmap exactly as an in-process pipeline would; reduce ops
// produce scalar registers consumed by alpha_ref parameters.
//
// Control flow is the loop op: a bounded sub-op-list with loop-carried
// values and until_empty/until_below exits, so deep searches are
// constant-size programs instead of worst-case unrolls. Execution of
// the top level is sequential and stops early when StopOnEmpty is set
// and a mult op produces an empty vector — the legacy unrolled-loop
// termination test.
//
// A program may also be registered as a stored procedure
// (PUT /v1/programs/{name}): input ops with a param name and alpha_ref
// fields naming scalar bindings are then bound per invoke, with only
// the seed vectors and scalars on the wire.
type Program struct {
	// Matrix names the default matrix mult ops run against; an op's own
	// Matrix field overrides it, and an invoke may override the default.
	Matrix string `json:"matrix,omitempty"`
	// Ops is the top-level op list; op k's output is "$k".
	Ops []ProgramOp `json:"ops"`
	// StopOnEmpty halts execution after a top-level mult op whose output
	// has no entries; the response reports how many ops executed.
	// (Inside a loop, use the until_empty exit instead.)
	StopOnEmpty bool `json:"stop_on_empty,omitempty"`
}

// ProgramOp is one step of a Program. Op selects the kind:
//
//   - "mult" (the default, also implied by ""): y ← ⟨op(A)·x, mask⟩
//     per Desc, exactly one multiply request's worth of work. The
//     input is X (literal) or XRef; MaskRef may name a prior op whose
//     output's support becomes Desc.Mask.
//   - "input": introduces a vector as this op's output — a literal X,
//     or an invoke-time argument named by Param (stored procedures).
//   - "indices": y(i) = i for every i in the input's support — the BFS
//     "frontier values become the vertices' own ids" step.
//   - "union": the element-wise union of XRef and YRef (values added
//     where both present) — visited-set maintenance, rank accumulation.
//   - "scale": y ← α·x.
//   - "axpy": y ← α·x + z, with XRef as x and YRef as z.
//   - "ewise_mult": the element-wise intersection of XRef and YRef,
//     combined with Desc.Semiring's multiply (arithmetic × when unset).
//   - "reduce": folds XRef to a scalar register per Reduce ("sum",
//     "max", "nnz"); the output is a scalar, consumable by alpha_ref.
//   - "prune": keeps the entries of XRef with |value| > α — the
//     convergence filter of data-driven iterations.
//   - "loop": runs Body up to MaxIters times with loop-carried values
//     (see the loop fields below).
//
// References: "$k" names op k of the CURRENT scope (the top level, or
// the surrounding loop body) and must point strictly backwards; "^i"
// names loop-carry slot i of the innermost enclosing loop. A loop
// body's ops see only earlier body ops and the carries — outer values
// enter a loop exclusively through Carry.
type ProgramOp struct {
	// Op is the op kind (see above); "" means "mult".
	Op string `json:"op,omitempty"`
	// Matrix overrides the program's default matrix (mult only).
	Matrix string `json:"matrix,omitempty"`
	// X is a literal input vector (input ops; mult ops without XRef).
	X *Vector `json:"x,omitempty"`
	// Param names an invoke-time vector argument bound to this input op
	// (stored procedures); mutually exclusive with a literal X.
	Param string `json:"param,omitempty"`
	// XRef names a prior op's output ("$3") or a loop carry ("^0") as
	// the input.
	XRef string `json:"x_ref,omitempty"`
	// YRef names the second operand of union/axpy/ewise_mult ops.
	YRef string `json:"y_ref,omitempty"`
	// MaskRef names a prior op whose output's support is the output
	// mask of this mult (polarity from Desc.Complement). Mutually
	// exclusive with a literal Desc.Mask.
	MaskRef string `json:"mask_ref,omitempty"`
	// Desc parameterizes a mult op exactly as in a Request; wire rules
	// apply (the semiring travels by name). For ewise_mult only the
	// semiring is consulted.
	Desc Desc `json:"desc"`
	// Alpha is the literal scalar parameter of scale/axpy/prune ops.
	Alpha *float64 `json:"alpha,omitempty"`
	// AlphaRef names the scalar parameter instead: a scalar op's output
	// ("$k"), a scalar loop carry ("^i"), or a bare name resolved from
	// the invoke's scalar bindings. Mutually exclusive with Alpha.
	AlphaRef string `json:"alpha_ref,omitempty"`
	// Reduce selects the reduce op's fold: "sum", "max" or "nnz".
	Reduce string `json:"reduce,omitempty"`
	// Emit returns this op's output in the response — per iteration for
	// ops inside a loop body, the final carry 0 for a loop op itself.
	// Ops without Emit compute server-side state only.
	Emit bool `json:"emit,omitempty"`

	// Body is the loop op's sub-op-list, a fresh "$k" scope.
	Body []ProgramOp `json:"body,omitempty"`
	// MaxIters bounds the loop (required, 1 ≤ MaxIters ≤ 1<<20).
	MaxIters int `json:"max_iters,omitempty"`
	// Carry initializes the loop-carried slots from refs of the
	// enclosing scope; inside Body, slot i reads as "^i". The loop op's
	// own output is slot 0 after the final iteration.
	Carry []string `json:"carry,omitempty"`
	// Update names the body refs rebinding each carry slot after every
	// iteration (len(Update) == len(Carry), types must match).
	Update []string `json:"update,omitempty"`
	// UntilEmpty names a body ref (vector): the loop exits after an
	// iteration leaving it empty.
	UntilEmpty string `json:"until_empty,omitempty"`
	// UntilBelow names a body ref (scalar): the loop exits after an
	// iteration leaving it below Threshold.
	UntilBelow string `json:"until_below,omitempty"`
	// Threshold is UntilBelow's exit bound.
	Threshold float64 `json:"threshold,omitempty"`
}

// ProgramResult is one emitted op output: a vector (Y) or a scalar
// register (Scalar). Results from inside a loop body carry the loop
// op's index in Op, the op's index within the body in BodyOp, and the
// 1-based iteration in Iter; top-level results leave Iter at 0.
type ProgramResult struct {
	// Op is the index of the (top-level) op that produced the result.
	Op int `json:"op"`
	// BodyOp locates the op inside the loop body when Iter > 0.
	BodyOp int `json:"body_op,omitempty"`
	// Iter is the 1-based loop iteration (0 for top-level results).
	Iter   int      `json:"iter,omitempty"`
	Y      *Vector  `json:"y,omitempty"`
	Scalar *float64 `json:"scalar,omitempty"`
}

// ProgramResponse is the wire form of a program's results: the emitted
// outputs in chronological order, plus how many top-level ops ran
// (less than len(Ops) when StopOnEmpty fired).
type ProgramResponse struct {
	Results []ProgramResult `json:"results,omitempty"`
	Steps   int             `json:"steps"`
	Err     *WireError      `json:"error,omitempty"`
}

// DecodeProgram parses a JSON-encoded Program.
func DecodeProgram(data []byte) (*Program, error) {
	var p Program
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("spmspv: decoding program: %w", err)
	}
	return &p, nil
}

// parseRef parses a "$k" op reference.
func parseRef(s string) (int, bool) {
	if len(s) < 2 || s[0] != '$' {
		return 0, false
	}
	k, err := strconv.Atoi(s[1:])
	if err != nil || k < 0 {
		return 0, false
	}
	return k, true
}

// parseCarry parses a "^i" loop-carry reference.
func parseCarry(s string) (int, bool) {
	if len(s) < 2 || s[0] != '^' {
		return 0, false
	}
	i, err := strconv.Atoi(s[1:])
	if err != nil || i < 0 {
		return 0, false
	}
	return i, true
}

// valKind is the compile-time type of one register.
type valKind uint8

const (
	valVector valKind = iota
	valScalar
)

func (v valKind) String() string {
	if v == valScalar {
		return "scalar"
	}
	return "vector"
}

// compScope is one lexical frame during compilation: the types of the
// ops compiled so far in this frame and of the enclosing loop's carry
// slots (nil at top level).
type compScope struct {
	kinds []valKind
	carry []valKind
}

// resolveRef resolves and type-checks one reference string against the
// scope: "$j" must name a strictly-earlier op of this frame, "^i" a
// carry slot of the innermost loop.
func (cs *compScope) resolveRef(s string, k int, what string, want valKind) (int, error) {
	if j, ok := parseRef(s); ok {
		if j >= k {
			return 0, fmt.Errorf("op %d: %s %q does not name an earlier op", k, what, s)
		}
		if cs.kinds[j] != want {
			return 0, fmt.Errorf("op %d: %s %q is a %s, want a %s", k, what, s, cs.kinds[j], want)
		}
		return j, nil
	}
	if i, ok := parseCarry(s); ok {
		if cs.carry == nil {
			return 0, fmt.Errorf("op %d: %s %q outside a loop body", k, what, s)
		}
		if i >= len(cs.carry) {
			return 0, fmt.Errorf("op %d: %s %q names carry slot %d of %d", k, what, s, i, len(cs.carry))
		}
		if cs.carry[i] != want {
			return 0, fmt.Errorf("op %d: %s %q is a %s, want a %s", k, what, s, cs.carry[i], want)
		}
		return dataflow.CarryRef(i), nil
	}
	return 0, fmt.Errorf("op %d: bad %s %q (want \"$k\" or \"^i\")", k, what, s)
}

// refKind reports a reference's type without requiring one.
func (cs *compScope) refKind(s string, k int, what string) (int, valKind, error) {
	if j, ok := parseRef(s); ok {
		if j >= k {
			return 0, 0, fmt.Errorf("op %d: %s %q does not name an earlier op", k, what, s)
		}
		return j, cs.kinds[j], nil
	}
	if i, ok := parseCarry(s); ok {
		if cs.carry == nil {
			return 0, 0, fmt.Errorf("op %d: %s %q outside a loop body", k, what, s)
		}
		if i >= len(cs.carry) {
			return 0, 0, fmt.Errorf("op %d: %s %q names carry slot %d of %d", k, what, s, i, len(cs.carry))
		}
		return dataflow.CarryRef(i), cs.carry[i], nil
	}
	return 0, 0, fmt.Errorf("op %d: bad %s %q (want \"$k\" or \"^i\")", k, what, s)
}

// maxParamName bounds invoke-time binding names.
const maxParamName = 64

func checkParamName(name, what string, k int) error {
	if name == "" || len(name) > maxParamName {
		return fmt.Errorf("op %d: %s name %q (want 1-%d bytes)", k, what, name, maxParamName)
	}
	if name[0] == '$' || name[0] == '^' {
		return fmt.Errorf("op %d: %s name %q may not start with %q", k, what, name, name[0])
	}
	return nil
}

// Validate checks the program's matrix-independent structure: known op
// kinds, refs that point strictly backwards and type-check (vector vs
// scalar), loop bounds and nesting depth, and the wire descriptor rules
// for every mult op. Dimension agreement with the named matrices is
// checked at execution, where the matrices are known. Validation IS
// compilation — a valid program lowers to the dataflow IR with no
// further checks — so a stored procedure pays it once at registration.
func (p *Program) Validate() error {
	_, err := compileProgram(p)
	return err
}

// compileProgram validates p and lowers it to the dataflow IR. Every
// structural property — ref scoping and typing, loop bounds, nesting
// depth, descriptor rules, literal-vector well-formedness — is checked
// here, before any execution state is allocated; Exec re-checks only
// what depends on runtime values. The caller decides whether the
// compilation is counted (ad-hoc runs and registrations are; Validate
// alone is not).
func compileProgram(p *Program) (*dataflow.Program, error) {
	if p == nil {
		return nil, fmt.Errorf("spmspv: nil program")
	}
	if len(p.Ops) == 0 {
		return nil, fmt.Errorf("spmspv: program with no ops")
	}
	ops, _, err := compileOps(p.Ops, nil, 0)
	if err != nil {
		return nil, fmt.Errorf("spmspv: %w", err)
	}
	return &dataflow.Program{Matrix: p.Matrix, Ops: ops, StopOnEmpty: p.StopOnEmpty}, nil
}

// compileOps lowers one op list (the top level, or a loop body) inside
// the given scope frame, returning the instructions and their types.
func compileOps(ops []ProgramOp, carry []valKind, depth int) ([]dataflow.Instr, []valKind, error) {
	cs := &compScope{kinds: make([]valKind, 0, len(ops)), carry: carry}
	out := make([]dataflow.Instr, len(ops))
	for k := range ops {
		in, kind, err := compileOp(&ops[k], k, cs, depth)
		if err != nil {
			return nil, nil, err
		}
		out[k] = in
		cs.kinds = append(cs.kinds, kind)
	}
	return out, cs.kinds, nil
}

// compileOp lowers one op. k is its index in the current scope; depth
// is the loop-nesting depth (0 at top level).
func compileOp(op *ProgramOp, k int, cs *compScope, depth int) (dataflow.Instr, valKind, error) {
	in := dataflow.Instr{
		Matrix:     op.Matrix,
		XRef:       dataflow.RefNone,
		YRef:       dataflow.RefNone,
		MaskRef:    dataflow.RefNone,
		AlphaRef:   dataflow.RefNone,
		UntilEmpty: dataflow.RefNone,
		UntilBelow: dataflow.RefNone,
		Emit:       op.Emit,
	}
	fail := func(err error) (dataflow.Instr, valKind, error) { return in, valVector, err }
	if op.Emit && depth >= 2 {
		return fail(fmt.Errorf("op %d: emit inside a nested loop body (max emit depth 1)", k))
	}

	// alpha compiles the scalar parameter of scale/axpy/prune.
	alpha := func(kind string) error {
		if (op.Alpha == nil) == (op.AlphaRef == "") {
			return fmt.Errorf("op %d: %s needs exactly one of alpha and alpha_ref", k, kind)
		}
		if op.Alpha != nil {
			in.Alpha = *op.Alpha
			return nil
		}
		if _, dollar := parseRef(op.AlphaRef); dollar || op.AlphaRef[0] == '^' {
			r, err := cs.resolveRef(op.AlphaRef, k, "alpha_ref", valScalar)
			if err != nil {
				return err
			}
			in.AlphaRef = r
			return nil
		}
		if err := checkParamName(op.AlphaRef, "alpha_ref binding", k); err != nil {
			return err
		}
		in.AlphaParam = op.AlphaRef
		return nil
	}
	xref := func() error {
		if op.XRef == "" {
			return fmt.Errorf("op %d: %s needs x_ref", k, op.Op)
		}
		r, err := cs.resolveRef(op.XRef, k, "x_ref", valVector)
		in.XRef = r
		return err
	}
	yref := func() error {
		if op.YRef == "" {
			return fmt.Errorf("op %d: %s needs x_ref and y_ref", k, op.Op)
		}
		r, err := cs.resolveRef(op.YRef, k, "y_ref", valVector)
		in.YRef = r
		return err
	}

	switch op.Op {
	case "", "mult":
		in.Kind = dataflow.KMult
		if (op.X == nil) == (op.XRef == "") {
			return fail(fmt.Errorf("op %d: mult needs exactly one of x and x_ref", k))
		}
		if op.XRef != "" {
			r, err := cs.resolveRef(op.XRef, k, "x_ref", valVector)
			if err != nil {
				return fail(err)
			}
			in.XRef = r
		} else {
			in.X = op.X
		}
		if op.MaskRef != "" {
			if op.Desc.Mask != nil {
				return fail(fmt.Errorf("op %d: both mask_ref and desc.mask set", k))
			}
			r, err := cs.resolveRef(op.MaskRef, k, "mask_ref", valVector)
			if err != nil {
				return fail(err)
			}
			in.MaskRef = r
		}
		if op.Desc.Masks != nil {
			return fail(fmt.Errorf("op %d: per-slot masks in a program op (ops are single multiplies)", k))
		}
		if op.Desc.Accum {
			return fail(fmt.Errorf("op %d: desc.accumulate in a program op (accumulate with a union op instead)", k))
		}
		if op.Desc.Complement && op.Desc.Mask == nil && op.MaskRef == "" {
			return fail(fmt.Errorf("op %d: desc.complement without a mask", k))
		}
		if op.Desc.Semiring == "" {
			return fail(fmt.Errorf("op %d: mult must name a semiring", k))
		}
		if _, ok := ParseSemiring(op.Desc.Semiring); !ok {
			return fail(fmt.Errorf("op %d: unknown semiring %q", k, op.Desc.Semiring))
		}
		in.Desc = op.Desc
		return in, valVector, nil

	case "input":
		in.Kind = dataflow.KInput
		if (op.X == nil) == (op.Param == "") {
			if op.X == nil {
				return fail(fmt.Errorf("op %d: input without x", k))
			}
			return fail(fmt.Errorf("op %d: input with both x and param", k))
		}
		if op.X != nil {
			if err := op.X.Validate(); err != nil {
				return fail(fmt.Errorf("op %d: %w", k, err))
			}
			in.X = op.X
		} else {
			if err := checkParamName(op.Param, "input param", k); err != nil {
				return fail(err)
			}
			in.Param = op.Param
		}
		return in, valVector, nil

	case "indices":
		in.Kind = dataflow.KIndices
		if err := xref(); err != nil {
			return fail(err)
		}
		return in, valVector, nil

	case "union":
		in.Kind = dataflow.KUnion
		if op.XRef == "" || op.YRef == "" {
			return fail(fmt.Errorf("op %d: union needs x_ref and y_ref", k))
		}
		if err := xref(); err != nil {
			return fail(err)
		}
		if err := yref(); err != nil {
			return fail(err)
		}
		return in, valVector, nil

	case "scale":
		in.Kind = dataflow.KScale
		if err := xref(); err != nil {
			return fail(err)
		}
		if err := alpha("scale"); err != nil {
			return fail(err)
		}
		return in, valVector, nil

	case "axpy":
		in.Kind = dataflow.KAxpy
		if op.XRef == "" || op.YRef == "" {
			return fail(fmt.Errorf("op %d: axpy needs x_ref and y_ref", k))
		}
		if err := xref(); err != nil {
			return fail(err)
		}
		if err := yref(); err != nil {
			return fail(err)
		}
		if err := alpha("axpy"); err != nil {
			return fail(err)
		}
		return in, valVector, nil

	case "ewise_mult":
		in.Kind = dataflow.KEwiseMult
		if op.XRef == "" || op.YRef == "" {
			return fail(fmt.Errorf("op %d: ewise_mult needs x_ref and y_ref", k))
		}
		if err := xref(); err != nil {
			return fail(err)
		}
		if err := yref(); err != nil {
			return fail(err)
		}
		if op.Desc.Semiring != "" {
			sr, ok := ParseSemiring(op.Desc.Semiring)
			if !ok {
				return fail(fmt.Errorf("op %d: unknown semiring %q", k, op.Desc.Semiring))
			}
			in.Mul = sr.Mul
		}
		return in, valVector, nil

	case "reduce":
		in.Kind = dataflow.KReduce
		if err := xref(); err != nil {
			return fail(err)
		}
		switch op.Reduce {
		case "sum":
			in.Reduce = dataflow.ReduceSum
		case "max":
			in.Reduce = dataflow.ReduceMax
		case "nnz":
			in.Reduce = dataflow.ReduceNNZ
		default:
			return fail(fmt.Errorf("op %d: unknown reduce %q (want sum, max or nnz)", k, op.Reduce))
		}
		return in, valScalar, nil

	case "prune":
		in.Kind = dataflow.KPrune
		if err := xref(); err != nil {
			return fail(err)
		}
		if err := alpha("prune"); err != nil {
			return fail(err)
		}
		return in, valVector, nil

	case "loop":
		in.Kind = dataflow.KLoop
		if op.Emit && depth >= 1 {
			return fail(fmt.Errorf("op %d: emit on a loop inside a loop body (max emit depth 1)", k))
		}
		if depth+1 > dataflow.MaxLoopDepth {
			return fail(fmt.Errorf("op %d: loops nested deeper than %d", k, dataflow.MaxLoopDepth))
		}
		if len(op.Body) == 0 {
			return fail(fmt.Errorf("op %d: loop with an empty body", k))
		}
		if op.MaxIters < 1 || op.MaxIters > dataflow.MaxLoopIters {
			return fail(fmt.Errorf("op %d: loop max_iters %d outside [1, %d]", k, op.MaxIters, dataflow.MaxLoopIters))
		}
		if len(op.Carry) == 0 {
			return fail(fmt.Errorf("op %d: loop without carried values", k))
		}
		if len(op.Update) != len(op.Carry) {
			return fail(fmt.Errorf("op %d: loop carries %d values but updates %d", k, len(op.Carry), len(op.Update)))
		}
		carryKinds := make([]valKind, len(op.Carry))
		in.Carry = make([]int, len(op.Carry))
		for i, s := range op.Carry {
			r, kind, err := cs.refKind(s, k, fmt.Sprintf("carry[%d]", i))
			if err != nil {
				return fail(err)
			}
			in.Carry[i], carryKinds[i] = r, kind
		}
		body, bodyKinds, err := compileOps(op.Body, carryKinds, depth+1)
		if err != nil {
			return fail(fmt.Errorf("op %d body: %w", k, err))
		}
		in.Body = body
		in.MaxIters = op.MaxIters
		bodyScope := &compScope{kinds: bodyKinds, carry: carryKinds}
		n := len(op.Body)
		in.Update = make([]int, len(op.Update))
		for i, s := range op.Update {
			r, kind, err := bodyScope.refKind(s, n, fmt.Sprintf("update[%d]", i))
			if err != nil {
				return fail(fmt.Errorf("op %d: %w", k, err))
			}
			if kind != carryKinds[i] {
				return fail(fmt.Errorf("op %d: update[%d] %q is a %s but carry slot %d is a %s",
					k, i, s, kind, i, carryKinds[i]))
			}
			in.Update[i] = r
		}
		if op.UntilEmpty != "" {
			r, err := bodyScope.resolveRef(op.UntilEmpty, n, "until_empty", valVector)
			if err != nil {
				return fail(fmt.Errorf("op %d: %w", k, err))
			}
			in.UntilEmpty = r
		}
		if op.UntilBelow != "" {
			r, err := bodyScope.resolveRef(op.UntilBelow, n, "until_below", valScalar)
			if err != nil {
				return fail(fmt.Errorf("op %d: %w", k, err))
			}
			in.UntilBelow = r
			in.Threshold = op.Threshold
		}
		return in, carryKinds[0], nil

	default:
		return fail(fmt.Errorf("op %d: unknown op kind %q", k, op.Op))
	}
}

// progMultFunc executes op k's multiply against the named matrix with
// the resolved input frontier and descriptor (mask refs already bound),
// returning the output frontier. It is the one step of program
// execution that differs between backends: the in-process Store runs
// the engine directly; the ShardedStore scatters the op across its
// shards and gathers the concatenated result.
type progMultFunc func(k int, matrix string, xf *Frontier, d Desc) (*Frontier, error)

// runProgramOps is the ad-hoc program entry shared by every backend:
// compile (counted — POST /v1/program pays a compilation per call,
// which is what invoking a stored procedure by name avoids), then
// execute with no invoke bindings.
func runProgramOps(p *Program, mult progMultFunc) (*ProgramResponse, error) {
	if p == nil {
		return nil, wireErrorf(CodeBadRequest, "nil program")
	}
	cp, err := compileProgram(p)
	if err != nil {
		return nil, wireErrorf(CodeInvalidRequest, "%v", err)
	}
	dataflow.CountCompilation()
	return execCompiled(cp, nil, mult)
}

// execCompiled executes a compiled program under the given invoke
// bindings (nil for ad-hoc runs) and folds the dataflow result into the
// wire response. Multiply errors pass through as their original
// *WireError; interpreter errors (dimension disagreement, unbound
// parameters) surface as invalid_request.
func execCompiled(cp *dataflow.Program, inv *InvokeRequest, mult progMultFunc) (*ProgramResponse, error) {
	env := dataflow.Env{Mult: dataflow.MultFunc(mult)}
	if inv != nil {
		env.Args = inv.Args
		env.Scalars = inv.Scalars
		env.Matrix = inv.Matrix
	}
	res, err := cp.Exec(env)
	if err != nil {
		var we *WireError
		if errors.As(err, &we) {
			return nil, we
		}
		return nil, wireErrorf(CodeInvalidRequest, "%v", err)
	}
	resp := &ProgramResponse{Steps: res.Steps}
	if len(res.Emits) > 0 {
		resp.Results = make([]ProgramResult, len(res.Emits))
		for q, em := range res.Emits {
			r := ProgramResult{Op: em.Op}
			if em.Iter > 0 {
				r.BodyOp, r.Iter = em.BodyOp, em.Iter
			}
			if em.V.IsScalar {
				s := em.V.S
				r.Scalar = &s
			} else {
				r.Y = em.V.F.List()
			}
			resp.Results[q] = r
		}
	}
	return resp, nil
}

// progMult returns the Store's multiply hook: request-level validation
// pinned to the named matrix's dimensions, then the cached engine.
func (st *Store) progMult() progMultFunc {
	return func(k int, name string, xf *Frontier, d Desc) (*Frontier, error) {
		mu, stats, err := st.load(name)
		if err != nil {
			return nil, err
		}
		a := mu.Matrix()
		// Request-level validation pinned to this matrix's
		// dimensions: a valid op cannot make Mult panic.
		r := &Request{X: xf.List(), Desc: d}
		if err := r.Validate(a.NumRows, a.NumCols); err != nil {
			stats.Observe(0, true)
			return nil, wireErrorf(CodeInvalidRequest, "op %d: %v", k, err)
		}
		outDim := a.NumRows
		if d.Transpose {
			outDim = a.NumCols
		}
		yf := NewOutputFrontier(outDim)
		t := time.Now()
		mu.Mult(xf, yf, Semiring{}, d)
		stats.Observe(time.Since(t), false)
		return yf, nil
	}
}

// Run executes a program against the store's matrices — the in-process
// form of POST /v1/program. Structural validation (= compilation) runs
// first; op outputs are kept server-side as frontiers between ops (so a
// mask_ref shares the producing op's bitmap), and only Emit'd outputs
// are copied into the response. Errors come back as *WireError.
func (st *Store) Run(p *Program) (*ProgramResponse, error) {
	return runProgramOps(p, st.progMult())
}

// ref formats an op reference.
func ref(k int) string { return "$" + strconv.Itoa(k) }

// carryRef formats a loop-carry reference.
func carryRef(i int) string { return "^" + strconv.Itoa(i) }
