// TestLiveReplicatedServe drives a REAL replicated deployment — an
// spmspv-serve coordinator over 2 row bands × 2 replicas, five
// processes on separate TCP listeners — and kills one replica with
// SIGKILL mid-run: the BFS after the kill must be bit-identical to the
// one before it with ZERO retry rounds consumed (in-round failover
// absorbs the death), the failover must be visible on the new
// counters, and the membership must flag the killed worker. Skipped
// unless SPMSPV_REPL_COORD_URL points at such a coordinator and
// SPMSPV_REPL_KILL_PID names a band-0 replica's pid; CI boots exactly
// this topology:
//
//	spmspv-serve -addr 127.0.0.1:18101 & # band 0, replica 0 (killed)
//	spmspv-serve -addr 127.0.0.1:18102 & # band 0, replica 1
//	spmspv-serve -addr 127.0.0.1:18103 & # band 1, replica 0
//	spmspv-serve -addr 127.0.0.1:18104 & # band 1, replica 1
//	spmspv-serve -addr 127.0.0.1:18100 -probe-interval 500ms \
//	  -shards "http://127.0.0.1:18101|http://127.0.0.1:18102,http://127.0.0.1:18103|http://127.0.0.1:18104" &
//	SPMSPV_REPL_COORD_URL=http://127.0.0.1:18100 SPMSPV_REPL_KILL_PID=<pid of :18101> \
//	  go test -run TestLiveReplicatedServe .
package spmspv_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"syscall"
	"testing"
	"time"

	spmspv "spmspv"
)

func TestLiveReplicatedServe(t *testing.T) {
	url := os.Getenv("SPMSPV_REPL_COORD_URL")
	if url == "" {
		t.Skip("SPMSPV_REPL_COORD_URL not set; run against a live replicated coordinator to enable")
	}
	killPid, err := strconv.Atoi(os.Getenv("SPMSPV_REPL_KILL_PID"))
	if err != nil || killPid <= 0 {
		t.Fatalf("SPMSPV_REPL_KILL_PID must name a replica worker pid: %v", err)
	}
	const name = "live-replicated-grid"
	c := spmspv.NewClient(url)

	// The coordinator must present as a 2-band replicated fleet.
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatalf("coordinator health: %v", err)
	}
	if h.Engine != "coordinator" || h.Shards != 2 || h.Replicas != 2 {
		t.Fatalf("coordinator health = %+v, want 2 shards x 2 replicas", h)
	}

	a := spmspv.Grid2D(24, 24)
	if _, err := c.PutMatrix(name, a); err != nil {
		t.Fatalf("uploading to %s: %v", url, err)
	}
	defer func() {
		if err := c.DeleteMatrix(name); err != nil {
			t.Errorf("cleanup delete: %v", err)
		}
	}()

	mu, err := spmspv.NewMultiplier(a)
	if err != nil {
		t.Fatal(err)
	}
	want := spmspv.BFS(mu, 0)
	if len(want.FrontierSizes) < 10 {
		t.Fatalf("grid BFS only had %d levels; test graph too easy", len(want.FrontierSizes))
	}

	// BFS against the healthy fleet first.
	before, err := c.BFS(name, 0)
	if err != nil {
		t.Fatalf("BFS before kill: %v", err)
	}
	compareBFS(t, "live-replicated/before", before, want)

	// SIGKILL one replica of band 0 — no drain, no goodbye.
	if err := syscall.Kill(killPid, syscall.SIGKILL); err != nil {
		t.Fatalf("killing replica pid %d: %v", killPid, err)
	}
	time.Sleep(200 * time.Millisecond) // let the process actually die

	// The same BFS must still be answered bit-identically: band 0's
	// reads fail over to the surviving replica within the dispatch
	// round.
	after, err := c.BFS(name, 0)
	if err != nil {
		t.Fatalf("BFS after kill: %v", err)
	}
	compareBFS(t, "live-replicated/after", after, want)

	// Zero retry rounds: replication absorbed the death in-round.
	stat, err := c.Matrix(name)
	if err != nil {
		t.Fatal(err)
	}
	if stat.Serve.Retries != 0 {
		t.Errorf("replica death burned %d retry rounds, want 0", stat.Serve.Retries)
	}
	if stat.Serve.Failovers == 0 {
		t.Errorf("matrix counters report no failovers after a replica kill: %+v", stat.Serve)
	}

	// The membership must flag the killed worker (the serving-path
	// feedback flags it immediately; the 500ms probe loop confirms).
	// Poll /v1/shards until it reports non-alive.
	deadline := time.Now().Add(10 * time.Second)
	var shards []spmspv.ShardStat
	for {
		resp, err := http.Get(url + "/v1/shards")
		if err != nil {
			t.Fatal(err)
		}
		shards = nil
		err = json.NewDecoder(resp.Body).Decode(&shards)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(shards) != 4 {
			t.Fatalf("coordinator reports %d replicas, want 4", len(shards))
		}
		if shards[0].State != "alive" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("killed replica still reported alive: %+v", shards[0])
		}
		time.Sleep(200 * time.Millisecond)
	}
	var failovers int64
	epoch := uint64(0)
	for _, sh := range shards {
		failovers += sh.Serve.Failovers
		epoch = sh.MemberEpoch
	}
	if failovers == 0 {
		t.Errorf("no replica reports failovers after the kill")
	}
	if epoch == 0 {
		t.Errorf("member epoch never advanced despite a death transition")
	}
	if shards[1].State != "alive" || shards[1].Serve.Requests == 0 {
		t.Errorf("surviving band-0 replica did not carry the traffic: %+v", shards[1])
	}

	fmt.Println("live replicated serve: OK,", len(shards), "replicas,",
		failovers, "failovers,", stat.Serve.Requests, "requests, epoch", epoch)
}
