package spmspv

import (
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spmspv/internal/perf"
	"spmspv/internal/sparse"
)

// Store is a concurrency-safe registry of named matrices — the unit of
// service of the spmspv-serve API, in the CombBLAS tradition of
// long-lived named matrices with cached per-matrix state. Each entry
// lazily builds and caches ONE Multiplier on first Load: its engine
// (with the per-matrix preprocessing construction performs), its
// calibrated hybrid threshold, and its compiled per-shape plans are
// then shared by every request against that matrix — the concurrency
// contract makes the single shared Multiplier the cheap, correct
// shape, and a warm store answers repeat traffic with zero plan
// compilations.
//
// A Store is also an Executor: Do resolves Request.Matrix and Run
// executes programs, so in-process callers and the HTTP server share
// one code path (and one set of per-matrix request/latency counters).
type Store struct {
	opts []Option

	mu      sync.RWMutex
	entries map[string]*storeEntry

	// programs is the stored-procedure registry (see programs.go).
	programs programRegistry
}

// storeEntry pairs a registered matrix with its lazily-built
// multiplier and serving counters.
type storeEntry struct {
	a     *Matrix
	stats *perf.ServeStats

	once sync.Once
	mult *Multiplier
	err  error
	// built mirrors "once has completed successfully" for lock-free
	// Stats reads (mult itself is only read under once).
	built atomic.Bool
}

// StoreStat is one matrix's registry entry as reported by Stats/List
// endpoints: identity, shape, whether the engine has been built, and
// the serving counters.
type StoreStat struct {
	Name string `json:"name"`
	Rows Index  `json:"rows"`
	Cols Index  `json:"cols"`
	NNZ  int64  `json:"nnz"`
	// Built reports whether the multiplier (engine, plans, calibration)
	// has been constructed yet; Put alone leaves it false.
	Built bool               `json:"built"`
	Serve perf.ServeSnapshot `json:"serve"`
}

// NewStore returns an empty store. opts are the NewMultiplier options
// applied to every entry's lazily-built multiplier (engine selection,
// threads, calibration cache...).
func NewStore(opts ...Option) *Store {
	return &Store{opts: opts, entries: map[string]*storeEntry{}}
}

// validRegistryName enforces the name charset shared by every named
// registry (matrices, stored programs): path-segment and batch-key
// safe ([A-Za-z0-9._-], nonempty, ≤ 128 bytes, not "." or "..").
func validRegistryName(kind, name string) error {
	if name == "" {
		return fmt.Errorf("spmspv: empty %s name", kind)
	}
	if len(name) > 128 {
		return fmt.Errorf("spmspv: %s name longer than 128 bytes", kind)
	}
	if name == "." || name == ".." {
		return fmt.Errorf("spmspv: %s name %q is reserved", kind, name)
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("spmspv: %s name %q contains %q (allowed: letters, digits, '.', '_', '-')", kind, name, c)
		}
	}
	return nil
}

// validStoreName is validRegistryName for the matrix registry.
func validStoreName(name string) error { return validRegistryName("matrix", name) }

// Put registers (or replaces) a matrix under name. Replacement swaps
// in a fresh entry: the old multiplier keeps serving requests that
// already resolved it and is collected when they finish.
func (st *Store) Put(name string, a *Matrix) error {
	if err := validStoreName(name); err != nil {
		return err
	}
	if a == nil {
		return fmt.Errorf("spmspv: Put with nil matrix")
	}
	if err := a.Validate(); err != nil {
		return err
	}
	st.mu.Lock()
	st.entries[name] = &storeEntry{a: a, stats: &perf.ServeStats{}}
	st.mu.Unlock()
	return nil
}

// PutFile loads a matrix file — Matrix Market, the JSON wire form, or
// the binary wire form, sniffed — and registers it under name. This is
// the one matrix loader behind cmd/spmspv, cmd/graphalgo and
// spmspv-serve's -preload flag.
func (st *Store) PutFile(name, path string) error {
	a, err := ReadMatrixFile(path)
	if err != nil {
		return err
	}
	return st.Put(name, a)
}

// EncodeMatrixBinary writes a in the compact binary wire form — the
// upload format Client ships and the densest of the encodings
// DecodeMatrix accepts.
func EncodeMatrixBinary(w io.Writer, a *Matrix) error { return sparse.EncodeMatrixBinary(w, a) }

// EncodeMatrixJSON writes a in the JSON wire form ({"nrows", "ncols",
// "colptr", "rowidx", "val"}), for hand-written uploads and
// cross-language clients.
func EncodeMatrixJSON(w io.Writer, a *Matrix) error { return sparse.EncodeMatrixJSON(w, a) }

// DecodeMatrix reads a matrix in any supported encoding — Matrix
// Market, the JSON wire form, or the binary wire form, sniffed.
func DecodeMatrix(r io.Reader) (*Matrix, error) { return sparse.DecodeMatrix(r) }

// ReadMatrixFile reads a matrix file in any supported encoding:
// Matrix Market, the JSON wire form, or the binary wire form
// (sniffed, so callers need not know which they were handed).
func ReadMatrixFile(path string) (*Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	a, err := sparse.DecodeMatrix(f)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	return a, nil
}

// entry resolves a name to its live entry.
func (st *Store) entry(name string) (*storeEntry, *WireError) {
	if name == "" {
		return nil, wireErrorf(CodeInvalidRequest, "request names no matrix")
	}
	st.mu.RLock()
	e, ok := st.entries[name]
	st.mu.RUnlock()
	if !ok {
		return nil, wireErrorf(CodeUnknownMatrix, "matrix %q is not registered", name)
	}
	return e, nil
}

// load resolves a name to its multiplier and counters, building the
// multiplier exactly once per entry — concurrent first loaders block
// until it is ready, as with the transpose engine inside a Multiplier.
func (st *Store) load(name string) (*Multiplier, *perf.ServeStats, error) {
	e, werr := st.entry(name)
	if werr != nil {
		return nil, nil, werr
	}
	e.once.Do(func() {
		e.mult, e.err = NewMultiplier(e.a, st.opts...)
		e.built.Store(e.err == nil)
	})
	if e.err != nil {
		return nil, nil, wireErrorf(CodeInternal, "building engine for %q: %v", name, e.err)
	}
	return e.mult, e.stats, nil
}

// Load returns the cached multiplier for name, building it (engine
// construction, hybrid calibration, plan cache) on first use.
func (st *Store) Load(name string) (*Multiplier, error) {
	mu, _, err := st.load(name)
	return mu, err
}

// Delete removes a matrix; it reports whether the name was registered.
// In-flight requests holding the multiplier finish normally.
func (st *Store) Delete(name string) bool {
	st.mu.Lock()
	_, ok := st.entries[name]
	delete(st.entries, name)
	st.mu.Unlock()
	return ok
}

// List returns the registered names in sorted order.
func (st *Store) List() []string {
	st.mu.RLock()
	names := make([]string, 0, len(st.entries))
	for name := range st.entries {
		names = append(names, name)
	}
	st.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Stats reports one matrix's registry entry.
func (st *Store) Stats(name string) (StoreStat, error) {
	e, werr := st.entry(name)
	if werr != nil {
		return StoreStat{}, werr
	}
	return statOf(name, e), nil
}

// StatsAll reports every registered matrix, sorted by name.
func (st *Store) StatsAll() []StoreStat {
	st.mu.RLock()
	stats := make([]StoreStat, 0, len(st.entries))
	for name, e := range st.entries {
		stats = append(stats, statOf(name, e))
	}
	st.mu.RUnlock()
	sort.Slice(stats, func(i, j int) bool { return stats[i].Name < stats[j].Name })
	return stats
}

func statOf(name string, e *storeEntry) StoreStat {
	return StoreStat{
		Name:  name,
		Rows:  e.a.NumRows,
		Cols:  e.a.NumCols,
		NNZ:   e.a.NNZ(),
		Built: e.built.Load(),
		Serve: e.stats.Snapshot(),
	}
}

// Do executes a wire request against the matrix it names — the
// in-process form of POST /v1/mult, and the Executor implementation
// that makes a Store interchangeable with a Client. Latency and
// failure are recorded on the matrix's serving counters; errors come
// back as *WireError.
func (st *Store) Do(req *Request) (*Response, error) {
	if req == nil {
		return nil, wireErrorf(CodeBadRequest, "nil request")
	}
	mu, stats, err := st.load(req.Matrix)
	if err != nil {
		return nil, err
	}
	t := time.Now()
	resp, derr := mu.Do(req)
	if derr != nil {
		stats.Observe(time.Since(t), true)
		return nil, wireErrorf(CodeInvalidRequest, "%v", derr)
	}
	stats.Observe(time.Since(t), false)
	return resp, nil
}

// DoContext is Do with a context. In-process execution cannot be
// interrupted mid-multiply, so the context is checked once before work
// begins — enough for the sharded coordinator's per-attempt deadlines
// to skip work whose caller already gave up.
func (st *Store) DoContext(ctx context.Context, req *Request) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, wireErrorf(CodeInternal, "%v", err)
	}
	return st.Do(req)
}

// RunContext is Run with a context, checked once before execution (see
// DoContext).
func (st *Store) RunContext(ctx context.Context, p *Program) (*ProgramResponse, error) {
	if err := ctx.Err(); err != nil {
		return nil, wireErrorf(CodeInternal, "%v", err)
	}
	return st.Run(p)
}

// PutMatrix registers a matrix and reports its fresh entry — the
// in-process form of Client.PutMatrix, so a *Store satisfies the
// ShardBackend surface and a coordinator mixes local and remote shards
// freely.
func (st *Store) PutMatrix(name string, a *Matrix) (*StoreStat, error) {
	if err := st.Put(name, a); err != nil {
		return nil, err
	}
	stat, err := st.Stats(name)
	if err != nil {
		return nil, err
	}
	return &stat, nil
}

// Matrix reports one registered matrix — the in-process form of
// Client.Matrix.
func (st *Store) Matrix(name string) (*StoreStat, error) {
	stat, err := st.Stats(name)
	if err != nil {
		return nil, err
	}
	return &stat, nil
}

// DeleteMatrix unregisters a matrix, failing with unknown_matrix when
// the name is not registered — the in-process form of
// Client.DeleteMatrix.
func (st *Store) DeleteMatrix(name string) error {
	if !st.Delete(name) {
		return wireErrorf(CodeUnknownMatrix, "matrix %q is not registered", name)
	}
	return nil
}

// resolveMult resolves a name for the serving layer's pre-validation:
// the dimensions a request is checked against, and the entry's
// counters. The multiplier is built as a side effect — first touch
// pays engine construction exactly as Do would.
func (st *Store) resolveMult(name string) (nrows, ncols Index, stats *perf.ServeStats, err error) {
	mu, stats, err := st.load(name)
	if err != nil {
		return 0, 0, nil, err
	}
	a := mu.Matrix()
	return a.NumRows, a.NumCols, stats, nil
}

// multBatch executes one coalesced flush — every x multiplied against
// the named matrix under a shared descriptor (semiring, transpose,
// complement), with optional per-slot masks, answered slot by slot in
// list form. It is the serving batcher's execution hook, shared by the
// single-process Store and the sharded coordinator.
func (st *Store) multBatch(name string, xs []*Vector, masks []*BitVector, d Desc) ([]*Vector, error) {
	mu, stats, err := st.load(name)
	if err != nil {
		return nil, err
	}
	a := mu.Matrix()
	outDim := a.NumRows
	if d.Transpose {
		outDim = a.NumCols
	}
	xf := make([]*Frontier, len(xs))
	yf := make([]*Frontier, len(xs))
	hasMask := false
	for q := range xs {
		xf[q] = NewFrontier(xs[q])
		yf[q] = NewOutputFrontier(outDim)
		if masks[q] != nil {
			hasMask = true
		}
	}
	bd := Desc{
		Semiring:  d.Semiring,
		Transpose: d.Transpose,
		Output:    OutputList,
	}
	if hasMask {
		bd.Masks = masks
		bd.Complement = d.Complement
	}
	mu.MultBatch(xf, yf, Semiring{}, bd)
	stats.ObserveBatch(len(xs))
	ys := make([]*Vector, len(xs))
	for q := range yf {
		ys[q] = yf[q].List()
	}
	return ys, nil
}
