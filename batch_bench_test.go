// Benchmarks for the batched multi-frontier multiply and the
// multi-source BFS workload built on it.
package spmspv_test

import (
	"fmt"
	"testing"

	spmspv "spmspv"
	"spmspv/internal/bench"
	"spmspv/internal/core"
	"spmspv/internal/graphgen"
	"spmspv/internal/sparse"
)

// BenchmarkBatchMultiply replays the frontier batches of an 8-source
// BFS on the R-MAT ljournal stand-in (scale 14) through the bucket
// engine at several batch granularities. batch=1 is the
// loop-of-Multiply baseline; larger sizes share the Estimate/
// bucket-sizing pass, workspace checkout and scheduling across the
// batch. The headline metric is ns/frontier; the win concentrates in
// the sparse ramp-up rounds (also reported as the sparse/* sub-
// benchmarks), which is where a multi-source BFS spends its calls.
func BenchmarkBatchMultiply(b *testing.B) {
	p, _ := graphgen.FindProblem("rmat-ljournal")
	a := p.Build(14)
	sources := bench.MultiSources(a.NumCols, 0, 8)
	batches := bench.CaptureMultiFrontiers(a, sources)
	sparseBatches := bench.FilterSparseBatches(batches, bench.SparseRoundCut(a.NumCols))

	for _, arm := range []struct {
		name    string
		batches [][]*sparse.SpVec
	}{{"all", batches}, {"sparse", sparseBatches}} {
		total := bench.CountFrontiers(arm.batches)
		for _, bs := range []int{1, 2, 8} {
			b.Run(fmt.Sprintf("%s/batch=%d", arm.name, bs), func(b *testing.B) {
				eng := core.NewMultiplier(a, core.Options{Threads: benchThreads, SortOutput: true})
				ys := bench.ReplayScratch(arm.batches)
				bench.ReplayBatches(eng, arm.batches, bs, ys) // warmup: sizes pooled buffers
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					bench.ReplayBatches(eng, arm.batches, bs, ys)
				}
				b.StopTimer()
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*total), "ns/frontier")
			})
		}
	}
}

// BenchmarkMultiBFS measures the full multi-source BFS workload:
// batched MultiBFS versus the same k searches run sequentially, on the
// facade's bucket engine.
func BenchmarkMultiBFS(b *testing.B) {
	a, _, _ := fixtures()
	mu := spmspv.New(a, spmspv.Options{Threads: benchThreads, SortOutput: true})
	sources := spmspv.SpreadSources(a.NumCols, 0, 8)
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spmspv.MultiBFS(mu, sources)
		}
	})
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, src := range sources {
				spmspv.BFS(mu, src)
			}
		}
	})
}
