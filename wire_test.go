// Tests for the wire-ready Request/Response contract: JSON round
// trips, validation, and in-process execution through Multiplier.Do.
package spmspv_test

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	spmspv "spmspv"
	"spmspv/internal/testutil"
)

func wireMultiplier(t *testing.T) (*spmspv.Multiplier, *spmspv.Matrix, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(61))
	a := testutil.RandomCSC(rng, 220, 180, 4)
	mu, err := spmspv.NewMultiplier(a, spmspv.WithEngineOptions(engineOptions(2)))
	if err != nil {
		t.Fatal(err)
	}
	return mu, a, rng
}

// TestRequestDoSingle executes a JSON-decoded single request and
// checks the result against Mult with the same descriptor.
func TestRequestDoSingle(t *testing.T) {
	mu, a, rng := wireMultiplier(t)
	x := testutil.RandomVector(rng, a.NumCols, 50, true)
	mask := randomMask(rng, a.NumRows, 0.5)

	req := &spmspv.Request{
		Matrix: "test-matrix",
		X:      x,
		Desc:   spmspv.Desc{Mask: mask, Complement: true, Semiring: "arithmetic"},
	}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := spmspv.DecodeRequest(data)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := mu.Do(decoded)
	if err != nil {
		t.Fatal(err)
	}
	want := maskedOracle(a, x, spmspv.Arithmetic, mask, true)
	if resp.Y == nil || !resp.Y.EqualValues(want, 1e-9) {
		t.Fatal("wire request result diverged from oracle")
	}
	if resp.OutputRep == "" {
		t.Fatal("response missing output representation")
	}
	// The response itself round-trips.
	rdata, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	var resp2 spmspv.Response
	if err := json.Unmarshal(rdata, &resp2); err != nil {
		t.Fatal(err)
	}
	if !resp2.Y.EqualValues(want, 1e-9) {
		t.Fatal("response lost precision across JSON")
	}
}

// TestRequestDoBatch executes a batch request with per-slot masks.
func TestRequestDoBatch(t *testing.T) {
	mu, a, rng := wireMultiplier(t)
	const k = 3
	xs := make([]*spmspv.Vector, k)
	masks := make([]*spmspv.BitVector, k)
	for q := range xs {
		xs[q] = testutil.RandomVector(rng, a.NumCols, 10+q*40, true)
		if q != 1 { // slot 1 unmasked: mixed batches are legal
			masks[q] = randomMask(rng, a.NumRows, 0.4)
		}
	}
	req := &spmspv.Request{
		Xs:   xs,
		Desc: spmspv.Desc{Masks: masks, Complement: true, BatchWidth: k, Semiring: "bfs"},
	}
	resp, err := mu.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Ys) != k {
		t.Fatalf("batch response has %d outputs, want %d", len(resp.Ys), k)
	}
	for q := range xs {
		want := baselinesReference(a, xs[q], spmspv.MinSelect2nd, masks[q], true)
		if !resp.Ys[q].EqualValues(want, 1e-9) {
			t.Fatalf("batch slot %d diverged from oracle", q)
		}
	}
}

// baselinesReference is descOracle without an accumulator, tolerating a
// nil mask.
func baselinesReference(a *spmspv.Matrix, x *spmspv.Vector, sr spmspv.Semiring, mask *spmspv.BitVector, complement bool) *spmspv.Vector {
	return descOracle(a, x, sr, mask, complement, nil)
}

// TestRequestDoTranspose runs a transposed (left-multiplication)
// request; the input dimension flips to the row count.
func TestRequestDoTranspose(t *testing.T) {
	mu, a, rng := wireMultiplier(t)
	x := testutil.RandomVector(rng, a.NumRows, 30, true)
	resp, err := mu.Do(&spmspv.Request{
		X:    x,
		Desc: spmspv.Desc{Transpose: true, Semiring: "arithmetic"},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := mu.MultiplyLeft(x, spmspv.Arithmetic)
	if !resp.Y.EqualValues(want, 1e-9) {
		t.Fatal("transposed wire request diverged from MultiplyLeft")
	}
}

// TestRequestValidation pins the error contract: every malformed
// request comes back as an error naming the problem, never a panic.
func TestRequestValidation(t *testing.T) {
	mu, a, rng := wireMultiplier(t)
	good := testutil.RandomVector(rng, a.NumCols, 10, true)
	cases := []struct {
		name string
		req  *spmspv.Request
		want string
	}{
		{"nil", nil, "nil request"},
		{"neither x nor xs", &spmspv.Request{Desc: spmspv.Desc{Semiring: "arithmetic"}}, "exactly one"},
		{"both x and xs", &spmspv.Request{X: good, Xs: []*spmspv.Vector{good}, Desc: spmspv.Desc{Semiring: "arithmetic"}}, "exactly one"},
		{"no semiring", &spmspv.Request{X: good}, "semiring"},
		{"unknown semiring", &spmspv.Request{X: good, Desc: spmspv.Desc{Semiring: "nope"}}, "unknown semiring"},
		{"dimension mismatch", &spmspv.Request{X: testutil.RandomVector(rng, 7, 3, true), Desc: spmspv.Desc{Semiring: "arithmetic"}}, "dimension"},
		{"complement without mask", &spmspv.Request{X: good, Desc: spmspv.Desc{Complement: true, Semiring: "arithmetic"}}, "Complement"},
		{"short mask", &spmspv.Request{X: good, Desc: spmspv.Desc{Mask: spmspv.NewBitVector(3), Semiring: "arithmetic"}}, "mask"},
		{"batch width mismatch", &spmspv.Request{Xs: []*spmspv.Vector{good}, Desc: spmspv.Desc{BatchWidth: 5, Semiring: "arithmetic"}}, "batch_width"},
		{"single with per-slot masks", &spmspv.Request{X: good, Desc: spmspv.Desc{Masks: []*spmspv.BitVector{spmspv.NewBitVector(a.NumRows)}, Semiring: "arithmetic"}}, "per-slot masks"},
	}
	for _, c := range cases {
		_, err := mu.Do(c.req)
		if err == nil {
			t.Fatalf("%s: Do accepted a malformed request", c.name)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestRequestValidateRejectsBatchAccum is the regression test for the
// missing validation rule: a batch request combining desc.accumulate
// with xs has no native engine path and no way to ship the
// accumulator state, so Validate must reject it — as an error, before
// anything executes.
func TestRequestValidateRejectsBatchAccum(t *testing.T) {
	mu, a, rng := wireMultiplier(t)
	req := &spmspv.Request{
		Xs: []*spmspv.Vector{
			testutil.RandomVector(rng, a.NumCols, 10, true),
			testutil.RandomVector(rng, a.NumCols, 10, true),
		},
		Desc: spmspv.Desc{Accum: true, Semiring: "arithmetic"},
	}
	if err := req.Validate(a.NumRows, a.NumCols); err == nil {
		t.Fatal("Validate accepted accumulate + xs")
	} else if !strings.Contains(err.Error(), "accumulate") {
		t.Fatalf("error %q does not name the accumulate rule", err)
	}
	if _, err := mu.Do(req); err == nil {
		t.Fatal("Do accepted accumulate + xs")
	}
	// Single accumulate requests remain legal (the wire accumulator is
	// the empty output, i.e. a plain multiply — still well-defined).
	single := &spmspv.Request{
		X:    testutil.RandomVector(rng, a.NumCols, 10, true),
		Desc: spmspv.Desc{Accum: true, Semiring: "arithmetic"},
	}
	if _, err := mu.Do(single); err != nil {
		t.Fatalf("single accumulate request rejected: %v", err)
	}
}

// TestRequestDoBitmapResponse pins the bitmap wire form: a request
// whose descriptor asks for OutputBitmap is answered with YBits (the
// sparse ind/val BitVector encoding), OutputRep "bitmap", and the
// payload round-trips through JSON carrying exactly the list-form
// result's support and values.
func TestRequestDoBitmapResponse(t *testing.T) {
	mu, a, rng := wireMultiplier(t)
	x := testutil.RandomVector(rng, a.NumCols, 40, true)

	listResp, err := mu.Do(&spmspv.Request{X: x, Desc: spmspv.Desc{Semiring: "arithmetic"}})
	if err != nil {
		t.Fatal(err)
	}
	bitResp, err := mu.Do(&spmspv.Request{
		X:    x,
		Desc: spmspv.Desc{Semiring: "arithmetic", Output: spmspv.OutputBitmap},
	})
	if err != nil {
		t.Fatal(err)
	}
	if bitResp.OutputRep != "bitmap" || bitResp.YBits == nil || bitResp.Y != nil {
		t.Fatalf("bitmap response: rep %q, y_bits %v, y %v",
			bitResp.OutputRep, bitResp.YBits != nil, bitResp.Y != nil)
	}

	data, err := json.Marshal(bitResp)
	if err != nil {
		t.Fatal(err)
	}
	var decoded spmspv.Response
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.YBits.Count() != listResp.Y.NNZ() {
		t.Fatalf("bitmap support %d, list support %d", decoded.YBits.Count(), listResp.Y.NNZ())
	}
	for k, i := range listResp.Y.Ind {
		v, ok := decoded.YBits.Get(i)
		if !ok || v != listResp.Y.Val[k] {
			t.Fatalf("bitmap[%d] = (%g,%v), list has %g", i, v, ok, listResp.Y.Val[k])
		}
	}

	// Batch form: per-slot bitmaps.
	batchResp, err := mu.Do(&spmspv.Request{
		Xs:   []*spmspv.Vector{x, x},
		Desc: spmspv.Desc{Semiring: "arithmetic", Output: spmspv.OutputBitmap},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batchResp.YsBits) != 2 || batchResp.Ys != nil {
		t.Fatalf("batch bitmap response: ys_bits %d, ys %v", len(batchResp.YsBits), batchResp.Ys != nil)
	}
	for q, bits := range batchResp.YsBits {
		if bits.Count() != listResp.Y.NNZ() {
			t.Fatalf("slot %d bitmap support %d, want %d", q, bits.Count(), listResp.Y.NNZ())
		}
	}
}

// TestWireErrorRoundTrip pins the structured wire error form.
func TestWireErrorRoundTrip(t *testing.T) {
	resp := &spmspv.Response{Err: &spmspv.WireError{Code: spmspv.CodeUnknownMatrix, Message: "matrix \"g\" is not registered"}}
	data, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	var decoded spmspv.Response
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Err == nil || decoded.Err.Code != spmspv.CodeUnknownMatrix {
		t.Fatalf("decoded error %+v", decoded.Err)
	}
	if !strings.Contains(decoded.Err.Error(), "unknown_matrix") {
		t.Errorf("Error() = %q, want the code in it", decoded.Err.Error())
	}
}
