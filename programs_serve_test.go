// Serving-surface tests for stored procedures: the /v1/programs
// endpoints through the Client in both wire forms, the SPIV invoke
// envelope round trip, and fuzzers pinning that hostile program and
// invoke bytes error instead of panicking.
package spmspv_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	spmspv "spmspv"
	"spmspv/internal/testutil"
)

// TestServeStoredPrograms drives the whole registry lifecycle over
// HTTP — register, list, fetch, invoke, delete — through the Client in
// both the binary and JSON wire forms, comparing the invoked BFS
// against the in-process algorithm.
func TestServeStoredPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	a := testutil.RandomCSC(rng, 80, 80, 4)
	for _, wire := range []string{spmspv.ContentTypeBinary, spmspv.ContentTypeJSON} {
		t.Run(wire, func(t *testing.T) {
			st := spmspv.NewStore(spmspv.WithEngineOptions(engineOptions(2)))
			if err := st.Put("g", a); err != nil {
				t.Fatal(err)
			}
			_, url := serveClient(t, st)
			cw := spmspv.NewClient(url, spmspv.WithWire(wire))

			stat, err := cw.PutProgram("bfs", spmspv.BFSProgram("g", int(a.NumCols), nil))
			if err != nil {
				t.Fatal(err)
			}
			if stat.Name != "bfs" || stat.Ops != 2 {
				t.Fatalf("put stat = %+v", stat)
			}
			if _, err := cw.PutProgram("broken", &spmspv.Program{}); err == nil {
				t.Error("server accepted an invalid program")
			}

			list, err := cw.Programs()
			if err != nil {
				t.Fatal(err)
			}
			if len(list) != 1 || list[0].Name != "bfs" {
				t.Fatalf("Programs() = %+v", list)
			}
			back, err := cw.GetProgram("bfs")
			if err != nil {
				t.Fatal(err)
			}
			if len(back.Ops) != 2 {
				t.Fatalf("fetched program has %d ops, want 2", len(back.Ops))
			}
			if err := back.Validate(); err != nil {
				t.Fatalf("fetched program no longer validates: %v", err)
			}

			mu, err := st.Load("g")
			if err != nil {
				t.Fatal(err)
			}
			want := spmspv.BFS(mu, 5)
			seed := spmspv.NewVector(a.NumCols, 1)
			seed.Append(5, 5)
			resp, err := cw.Invoke("bfs", &spmspv.InvokeRequest{Args: map[string]*spmspv.Vector{"seed": seed}})
			if err != nil {
				t.Fatal(err)
			}
			got, err := spmspv.DecodeBFSProgramResponse(resp, a.NumCols, 5, int(a.NumCols))
			if err != nil {
				t.Fatal(err)
			}
			compareBFS(t, wire, got, want)

			if _, err := cw.Invoke("nope", nil); err == nil {
				t.Error("invoking an unknown program succeeded")
			} else if !strings.Contains(err.Error(), "unknown program") {
				t.Errorf("unknown-program error = %v", err)
			}

			if err := cw.DeleteProgram("bfs"); err != nil {
				t.Fatal(err)
			}
			if err := cw.DeleteProgram("bfs"); err == nil {
				t.Error("second delete succeeded")
			}
			if _, err := cw.GetProgram("bfs"); err == nil {
				t.Error("fetched a deleted program")
			}
		})
	}
}

// TestInvokeWireRoundTrip pins the SPIV envelope: args keyed by sorted
// name, scalar bindings and the matrix override all survive the binary
// round trip.
func TestInvokeWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	inv := &spmspv.InvokeRequest{
		Matrix: "override",
		Args: map[string]*spmspv.Vector{
			"seed":  testutil.RandomVector(rng, 50, 8, true),
			"bias":  testutil.RandomVector(rng, 50, 3, true),
			"zeros": spmspv.NewVector(50, 0),
		},
		Scalars: map[string]float64{"damping": 0.85, "tol": 1e-9},
	}
	var buf bytes.Buffer
	if err := spmspv.EncodeInvokeRequestBinary(&buf, inv); err != nil {
		t.Fatal(err)
	}
	got, err := spmspv.DecodeInvokeRequestBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Matrix != inv.Matrix {
		t.Errorf("matrix = %q, want %q", got.Matrix, inv.Matrix)
	}
	if len(got.Args) != len(inv.Args) {
		t.Fatalf("args = %d, want %d", len(got.Args), len(inv.Args))
	}
	for name, x := range inv.Args {
		if !got.Args[name].EqualValues(x, 0) {
			t.Errorf("arg %q did not round-trip", name)
		}
	}
	if len(got.Scalars) != 2 || got.Scalars["damping"] != 0.85 || got.Scalars["tol"] != 1e-9 {
		t.Errorf("scalars = %v", got.Scalars)
	}

	// The empty request is legal (a stored program with no params).
	buf.Reset()
	if err := spmspv.EncodeInvokeRequestBinary(&buf, &spmspv.InvokeRequest{}); err != nil {
		t.Fatal(err)
	}
	if got, err = spmspv.DecodeInvokeRequestBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if len(got.Args) != 0 || len(got.Scalars) != 0 || got.Matrix != "" {
		t.Errorf("empty invoke round-tripped as %+v", got)
	}
}

// FuzzProgramValidate pins that arbitrary JSON programs — loops, refs,
// scalar ops included — either decode+validate or error; never panic,
// never compile something unexecutable.
func FuzzProgramValidate(f *testing.F) {
	for _, seed := range []string{
		`{"ops":[{"op":"input","x":{"n":4,"ind":[1],"val":[1]}},{"x_ref":"$0","desc":{"semiring":"bfs"}}]}`,
		`{"ops":[{"op":"input","param":"seed"},{"op":"loop","carry":["$0"],"max_iters":3,"update":["$0"],"until_empty":"$0","body":[{"op":"scale","x_ref":"^0","alpha":0.5}]}]}`,
		`{"ops":[{"op":"input","x":{"n":2,"ind":[0],"val":[1]}},{"op":"reduce","reduce":"sum","x_ref":"$0","emit":true}]}`,
		`{"ops":[{"op":"loop","carry":["^9"],"max_iters":99999999,"body":[]}]}`,
		`{"ops":[{"op":"axpy","x_ref":"$8","y_ref":"$-1","alpha_ref":"$0"}]}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := spmspv.DecodeProgram(data)
		if err != nil {
			return
		}
		_ = p.Validate() // must not panic
	})
}

// FuzzDecodeProgramBinary pins the SPPG decoder against hostile bytes:
// error or a program, never a panic or unbounded allocation.
func FuzzDecodeProgramBinary(f *testing.F) {
	var buf bytes.Buffer
	if err := spmspv.EncodeProgramBinary(&buf, spmspv.BFSProgram("g", 8, spmspv.NewVector(8, 0))); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("SPPG"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := spmspv.DecodeProgramBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		_ = p.Validate()
	})
}

// FuzzDecodeInvokeRequestBinary pins the SPIV decoder the same way:
// section indices out of the declared arg range, truncated frames and
// garbage headers must all error cleanly.
func FuzzDecodeInvokeRequestBinary(f *testing.F) {
	var buf bytes.Buffer
	inv := &spmspv.InvokeRequest{
		Args:    map[string]*spmspv.Vector{"seed": spmspv.NewVector(4, 0)},
		Scalars: map[string]float64{"tol": 1e-9},
	}
	if err := spmspv.EncodeInvokeRequestBinary(&buf, inv); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("SPIV"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := spmspv.DecodeInvokeRequestBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		_ = got.Validate()
	})
}
