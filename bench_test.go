// Benchmarks regenerating the paper's evaluation (one family per table
// or figure). Run with:
//
//	go test -bench=. -benchmem
//
// Custom metrics: "work/op" is the aggregated deterministic work
// counter (perf.Counters.Work) per multiplication — the quantity behind
// the paper's work-efficiency comparison, stable across hosts. Step
// metrics of Fig. 6 are reported as "<step>-ns/op".
//
// The graphs are Table IV stand-ins at benchScale (laptop scale); set
// the shape comparisons (who wins, crossovers), not absolute numbers,
// against the paper.
package spmspv_test

import (
	"fmt"
	"sync"
	"testing"

	"spmspv/internal/bench"
	"spmspv/internal/core"
	"spmspv/internal/graphgen"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

const (
	benchScale   = 13 // log2 vertices of benchmark graphs
	benchThreads = 4
)

// lazily built shared fixtures (graph construction excluded from
// benchmark timing).
var (
	fixOnce      sync.Once
	fixLjournal  *sparse.CSC
	fixFrontiers []*sparse.SpVec
	fixER        *sparse.CSC
)

func fixtures() (*sparse.CSC, []*sparse.SpVec, *sparse.CSC) {
	fixOnce.Do(func() {
		p, _ := graphgen.FindProblem("rmat-ljournal")
		fixLjournal = p.Build(benchScale)
		fixFrontiers = bench.CaptureFrontiers(fixLjournal, 0)
		fixER = graphgen.ErdosRenyi(1<<benchScale, 8, 42)
	})
	return fixLjournal, fixFrontiers, fixER
}

func reportWork(b *testing.B, eng bench.Engine, calls int) {
	if calls <= 0 || b.N <= 0 {
		return
	}
	b.ReportMetric(float64(eng.Counters().Work())/float64(b.N*calls), "work/op")
}

// benchMultiply times one engine on one frontier.
func benchMultiply(b *testing.B, spec bench.EngineSpec, a *sparse.CSC, x *sparse.SpVec, threads int) {
	eng := spec.Build(a, threads)
	y := sparse.NewSpVec(0, 0)
	eng.Multiply(x, y, semiring.Arithmetic)
	eng.ResetCounters()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Multiply(x, y, semiring.Arithmetic)
	}
	b.StopTimer()
	reportWork(b, eng, 1)
}

// BenchmarkFig2 reproduces Figure 2: the bucket algorithm with sorted
// versus unsorted vectors at a sparse and a dense frontier.
func BenchmarkFig2(b *testing.B) {
	a, frontiers, _ := fixtures()
	n := int(a.NumCols)
	for _, fr := range []struct {
		name   string
		target int
	}{{"sparse", n / 500}, {"dense", n * 47 / 100}} {
		x := bench.FrontierWithNNZ(frontiers, fr.target)
		for _, sorted := range []bool{true, false} {
			name := fmt.Sprintf("%s/nnzx=%d/sorted=%v", fr.name, x.NNZ(), sorted)
			b.Run(name, func(b *testing.B) {
				benchMultiply(b, bench.BucketEngine(core.Options{SortOutput: sorted}), a, x, benchThreads)
			})
		}
	}
}

// BenchmarkFig3 reproduces Figure 3: the four algorithms across the
// BFS-frontier sparsity sweep, at 1 thread and benchThreads.
func BenchmarkFig3(b *testing.B) {
	a, frontiers, _ := fixtures()
	// A sparse, a medium and the densest frontier keep the benchmark
	// suite's runtime bounded; the full sweep lives in
	// `spmspv-bench -experiment fig3`.
	picks := []*sparse.SpVec{
		bench.FrontierWithNNZ(frontiers, 8),
		bench.FrontierWithNNZ(frontiers, int(a.NumCols)/100),
		bench.FrontierWithNNZ(frontiers, int(a.NumCols)),
	}
	for _, threads := range []int{1, benchThreads} {
		for _, x := range picks {
			for _, spec := range bench.AllEngines() {
				name := fmt.Sprintf("t=%d/nnzx=%d/%s", threads, x.NNZ(), spec.Name)
				b.Run(name, func(b *testing.B) {
					benchMultiply(b, spec, a, x, threads)
				})
			}
		}
	}
}

// BenchmarkFig4 reproduces Figure 4: total BFS SpMSpV time per
// algorithm on one low-diameter and one high-diameter graph (the full
// 11-graph suite runs via `spmspv-bench -experiment fig4`).
func BenchmarkFig4(b *testing.B) {
	for _, gname := range []string{"rmat-ljournal", "grid5-g3circuit"} {
		p, _ := graphgen.FindProblem(gname)
		a := p.Build(benchScale)
		frontiers := bench.CaptureFrontiers(a, 0)
		for _, spec := range bench.AllEngines() {
			for _, threads := range []int{1, benchThreads} {
				name := fmt.Sprintf("%s/t=%d/%s", gname, threads, spec.Name)
				b.Run(name, func(b *testing.B) {
					eng := spec.Build(a, threads)
					y := sparse.NewSpVec(0, 0)
					for _, x := range frontiers {
						eng.Multiply(x, y, semiring.MinSelect2nd)
					}
					eng.ResetCounters()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						for _, x := range frontiers {
							eng.Multiply(x, y, semiring.MinSelect2nd)
						}
					}
					b.StopTimer()
					reportWork(b, eng, len(frontiers))
				})
			}
		}
	}
}

// BenchmarkFig5 reproduces Figure 5 (the KNL-analogue): the three
// non-GraphMat engines on a scale-free graph at a manycore-style
// oversubscribed thread count. Work counters (work/op) carry the
// scaling shape on hosts with few physical cores.
func BenchmarkFig5(b *testing.B) {
	p, _ := graphgen.FindProblem("rmat-wikipedia")
	a := p.Build(benchScale)
	frontiers := bench.CaptureFrontiers(a, 0)
	for _, spec := range bench.AllEngines()[:3] {
		for _, threads := range []int{1, 16, 64} {
			name := fmt.Sprintf("t=%d/%s", threads, spec.Name)
			b.Run(name, func(b *testing.B) {
				eng := spec.Build(a, threads)
				y := sparse.NewSpVec(0, 0)
				for _, x := range frontiers {
					eng.Multiply(x, y, semiring.MinSelect2nd)
				}
				eng.ResetCounters()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, x := range frontiers {
						eng.Multiply(x, y, semiring.MinSelect2nd)
					}
				}
				b.StopTimer()
				reportWork(b, eng, len(frontiers))
			})
		}
	}
}

// BenchmarkFig6 reproduces Figure 6: the per-step breakdown of the
// bucket algorithm, reported as custom metrics per step.
func BenchmarkFig6(b *testing.B) {
	a, frontiers, _ := fixtures()
	n := int(a.NumCols)
	for _, target := range []int{n / 25000, n / 500, n * 47 / 100} {
		x := bench.FrontierWithNNZ(frontiers, max(target, 1))
		b.Run(fmt.Sprintf("nnzx=%d", x.NNZ()), func(b *testing.B) {
			eng := core.NewMultiplier(a, core.Options{Threads: benchThreads, SortOutput: true})
			y := sparse.NewSpVec(0, 0)
			eng.Multiply(x, y, semiring.Arithmetic)
			var estimate, bucket, merge, output float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Multiply(x, y, semiring.Arithmetic)
				s := eng.Steps()
				estimate += float64(s.Estimate.Nanoseconds())
				bucket += float64(s.Bucket.Nanoseconds())
				merge += float64(s.Merge.Nanoseconds())
				output += float64(s.Output.Nanoseconds())
			}
			b.StopTimer()
			b.ReportMetric(estimate/float64(b.N), "estimate-ns/op")
			b.ReportMetric(bucket/float64(b.N), "bucketing-ns/op")
			b.ReportMetric(merge/float64(b.N), "merge-ns/op")
			b.ReportMetric(output/float64(b.N), "output-ns/op")
		})
	}
}

// BenchmarkTable1 measures the work classification of Tables I/II: each
// algorithm's work/op on a fixed Erdős–Rényi workload at 1 and
// benchThreads threads. Work-efficient algorithms keep work/op flat.
func BenchmarkTable1(b *testing.B) {
	_, _, er := fixtures()
	n := er.NumCols
	x := sparse.NewSpVec(n, 256)
	for i := sparse.Index(0); i < 256; i++ {
		x.Append(i*(n/256), 1)
	}
	for _, spec := range bench.AllEngines() {
		for _, threads := range []int{1, benchThreads} {
			b.Run(fmt.Sprintf("%s/t=%d", spec.Name, threads), func(b *testing.B) {
				benchMultiply(b, spec, er, x, threads)
			})
		}
	}
}

// BenchmarkTable4Gen measures the stand-in generators (Table IV's
// synthetic suite construction cost).
func BenchmarkTable4Gen(b *testing.B) {
	for _, p := range graphgen.Problems() {
		b.Run(p.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a := p.Build(benchScale - 2)
				if a.NNZ() == 0 {
					b.Fatal("empty graph")
				}
			}
		})
	}
}

// BenchmarkAblation sweeps the §III-A/B design choices on a fixed
// medium-density workload.
func BenchmarkAblation(b *testing.B) {
	a, frontiers, _ := fixtures()
	x := bench.FrontierWithNNZ(frontiers, int(a.NumCols)/100)
	variants := []struct {
		name string
		opt  core.Options
	}{
		{"buckets=1", core.Options{SortOutput: true, BucketsPerThread: 1}},
		{"buckets=4-default", core.Options{SortOutput: true}},
		{"buckets=16", core.Options{SortOutput: true, BucketsPerThread: 16}},
		{"staging=64", core.Options{SortOutput: true, StagingEntries: 64}},
		{"static-sched", core.Options{SortOutput: true, MergeSched: core.SchedStatic}},
		{"inf-sentinel", core.Options{SortOutput: true, UseInfSentinel: true}},
		{"even-split", core.Options{SortOutput: true, SplitEvenly: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			benchMultiply(b, bench.BucketEngine(v.opt), a, x, benchThreads)
		})
	}
}

// BenchmarkMasked compares mask pushdown against multiply-then-filter
// (paper §V masked-operations extension).
func BenchmarkMasked(b *testing.B) {
	a, frontiers, _ := fixtures()
	x := bench.FrontierWithNNZ(frontiers, int(a.NumCols)/100)
	mask := sparse.NewBitVec(a.NumRows)
	half := sparse.NewSpVec(a.NumRows, int(a.NumRows)/2)
	for i := sparse.Index(0); i < a.NumRows; i += 2 {
		half.Append(i, 1)
	}
	mask.SetFrom(half)

	b.Run("pushdown", func(b *testing.B) {
		eng := core.NewMultiplier(a, core.Options{Threads: benchThreads, SortOutput: true})
		y := sparse.NewSpVec(0, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.MultiplyMasked(x, y, semiring.Arithmetic, mask, false)
		}
	})
	b.Run("post-filter", func(b *testing.B) {
		eng := core.NewMultiplier(a, core.Options{Threads: benchThreads, SortOutput: true})
		y := sparse.NewSpVec(0, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.Multiply(x, y, semiring.Arithmetic)
			w := 0
			for k, ind := range y.Ind {
				if mask.Test(ind) {
					y.Ind[w], y.Val[w] = y.Ind[k], y.Val[k]
					w++
				}
			}
			y.Ind = y.Ind[:w]
			y.Val = y.Val[:w]
		}
	})
}

// BenchmarkHybrid evaluates the §V vector/matrix-driven switch across
// thresholds on the full BFS frontier replay.
func BenchmarkHybrid(b *testing.B) {
	a, frontiers, _ := fixtures()
	run := func(b *testing.B, eng bench.Engine) {
		y := sparse.NewSpVec(0, 0)
		for _, x := range frontiers {
			eng.Multiply(x, y, semiring.MinSelect2nd)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, x := range frontiers {
				eng.Multiply(x, y, semiring.MinSelect2nd)
			}
		}
	}
	b.Run("bucket-only", func(b *testing.B) {
		run(b, bench.AllEngines()[0].Build(a, benchThreads))
	})
	b.Run("graphmat-only", func(b *testing.B) {
		run(b, bench.AllEngines()[3].Build(a, benchThreads))
	})
	for _, th := range []float64{0.05, 0.25} {
		b.Run(fmt.Sprintf("hybrid-%.2f", th), func(b *testing.B) {
			run(b, bench.HybridSpec(th).Build(a, benchThreads))
		})
	}
	b.Run("hybrid-calibrated", func(b *testing.B) {
		run(b, bench.HybridSpec(0).Build(a, benchThreads))
	})
}
