// Benchmarks for the concurrency-ready engine layer: one shared
// Multiplier serving G goroutines (the workspace-pooling win) and the
// semiring op-specialization microbenchmark (tagged predefined ops vs
// the func-valued custom path the predefined semirings used to take).
package spmspv_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	spmspv "spmspv"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// BenchmarkConcurrentMultiply sweeps goroutine counts over ONE shared
// bucket Multiplier. Each goroutine runs single-threaded multiplies
// (Threads: 1) so the sweep isolates engine-level concurrency —
// workspace pooling and counter aggregation — from intra-call
// parallelism. Throughput should scale with goroutines now that calls
// no longer serialize on a single workspace.
func BenchmarkConcurrentMultiply(b *testing.B) {
	a, frontiers, _ := fixtures()
	x := bestFrontier(frontiers, 1<<11)
	mu := spmspv.New(a, spmspv.Options{Threads: 1, SortOutput: true})
	for _, gs := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", gs), func(b *testing.B) {
			var wg sync.WaitGroup
			var next int64
			b.ResetTimer()
			for g := 0; g < gs; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					y := sparse.NewSpVec(0, 0)
					// Claim exactly b.N iterations across the goroutines
					// so ns/op is wall-clock per multiply at this
					// concurrency level.
					for atomic.AddInt64(&next, 1) <= int64(b.N) {
						mu.MultiplyInto(x, y, spmspv.Arithmetic)
					}
				}()
			}
			wg.Wait()
		})
	}
}

func bestFrontier(frontiers []*sparse.SpVec, target int) *sparse.SpVec {
	best := frontiers[0]
	for _, fr := range frontiers {
		d, bd := fr.NNZ()-target, best.NNZ()-target
		if d < 0 {
			d = -d
		}
		if bd < 0 {
			bd = -bd
		}
		if d < bd {
			best = fr
		}
	}
	return best
}

// BenchmarkSemiringDispatch measures the op-specialization win on the
// BFS workload (MinSelect2nd, the paper's §IV-D semiring). "tagged" is
// the predefined semiring, which dispatches once per call (bucket) or
// once per column (the baselines' SPA accumulate) to a monomorphized
// kernel; "func" is the identical semiring with the tags stripped,
// forcing the func-pointer path every predefined semiring took before
// specialization. Covered engines: the bucket engine's scatter/merge
// kernels and the CombBLAS-SPA / GraphMat accumulate loops.
func BenchmarkSemiringDispatch(b *testing.B) {
	a, frontiers, _ := fixtures()
	x := bestFrontier(frontiers, 1<<12)

	untaggedBFS := semiring.MinSelect2nd
	untaggedBFS.AddKind = semiring.AddCustom
	untaggedBFS.MulKind = semiring.MulCustom
	untaggedArith := spmspv.Semiring{
		Name: "arith-custom",
		Zero: 0,
		Add:  semiring.Arithmetic.Add,
		Mul:  semiring.Arithmetic.Mul,
	}
	semirings := []struct {
		name string
		sr   spmspv.Semiring
	}{
		{"bfs-tagged", semiring.MinSelect2nd},
		{"bfs-func", untaggedBFS},
		{"arith-tagged", semiring.Arithmetic},
		{"arith-func", untaggedArith},
	}

	for _, eng := range []struct {
		name string
		alg  spmspv.Algorithm
	}{
		{"bucket", spmspv.Bucket},
		{"combblas-spa", spmspv.CombBLASSPA},
		{"graphmat", spmspv.GraphMat},
	} {
		mu := spmspv.NewWithAlgorithm(a, eng.alg, spmspv.Options{Threads: benchThreads, SortOutput: true})
		for _, v := range semirings {
			b.Run(eng.name+"/"+v.name, func(b *testing.B) {
				y := sparse.NewSpVec(0, 0)
				for i := 0; i < b.N; i++ {
					mu.MultiplyInto(x, y, v.sr)
				}
			})
		}
	}
}
