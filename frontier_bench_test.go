package spmspv_test

import (
	"testing"

	spmspv "spmspv"
)

// The frontier-pipeline benchmarks compare the rewritten masked BFS —
// output frontiers fed back as inputs, bitmaps emitted natively — with
// the pre-refactor level loop that rebuilt the next frontier list by
// hand (forcing a fresh list→bitmap conversion whenever the next level
// went matrix-driven). Both drive the same direction-switching hybrid
// engine; ns/level is the figure of merit, and outputconv/op proves
// the pipeline's conversion count is zero.

func hybridForBench(b *testing.B, scale int) (*spmspv.Multiplier, *spmspv.Matrix) {
	b.Helper()
	a := spmspv.RMAT(spmspv.DefaultRMAT(scale), 3)
	mu := spmspv.NewWithAlgorithm(a, spmspv.Hybrid,
		spmspv.Options{SortOutput: true, HybridThreshold: 0.02})
	return mu, a
}

func BenchmarkBFSMaskedFrontierPipeline(b *testing.B) {
	mu, _ := hybridForBench(b, 14)
	var levels int
	spmspv.ResetFrontierStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := spmspv.BFSMasked(mu, 0)
		levels += len(res.FrontierSizes)
	}
	b.StopTimer()
	outConv, _ := spmspv.FrontierOutputStats()
	if levels > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(levels), "ns/level")
	}
	b.ReportMetric(float64(outConv)/float64(b.N), "outputconv/op")
}

// BenchmarkBFSMaskedPreRefactorLoop reproduces the pre-output-layer
// masked BFS: every level's product lands in a bare list vector, the
// next frontier is rebuilt entry by entry, and any bitmap the
// matrix-driven side needs is re-derived from scratch.
func BenchmarkBFSMaskedPreRefactorLoop(b *testing.B) {
	mu, a := hybridForBench(b, 14)
	n := a.NumCols
	var levels int
	spmspv.ResetFrontierStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parents := make([]spmspv.Index, n)
		levelOf := make([]int32, n)
		for v := range parents {
			parents[v] = -1
			levelOf[v] = -1
		}
		parents[0] = 0
		levelOf[0] = 0
		visited := spmspv.NewBitVector(n)
		x := spmspv.NewVector(n, 1)
		x.Append(0, 0)
		visited.SetFrom(x)
		y := spmspv.NewVector(n, 0)
		for level := int32(1); x.NNZ() > 0; level++ {
			levels++
			mu.MultiplyMasked(x, y, spmspv.MinSelect2nd, visited, true)
			x.Reset(n)
			for k, v := range y.Ind {
				levelOf[v] = level
				parents[v] = spmspv.Index(y.Val[k])
				x.Append(v, float64(v))
			}
			visited.SetFrom(x)
		}
	}
	b.StopTimer()
	if levels > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(levels), "ns/level")
	}
}

// BenchmarkMultiplyMaskedEngines times one masked multiply per
// registered engine on a common frontier, the cross-engine comparison
// masked BFS levels are made of.
func BenchmarkMultiplyMaskedEngines(b *testing.B) {
	a := spmspv.RMAT(spmspv.DefaultRMAT(13), 7)
	n := a.NumCols
	x := spmspv.NewVector(n, 0)
	for i := spmspv.Index(0); i < n; i += 16 {
		x.Append(i, float64(i))
	}
	mask := spmspv.NewBitVector(a.NumRows)
	sel := spmspv.NewVector(a.NumRows, 0)
	for i := spmspv.Index(0); i < a.NumRows; i += 2 {
		sel.Append(i, 1)
	}
	mask.SetFrom(sel)

	for _, alg := range spmspv.Algorithms() {
		mu := spmspv.NewWithAlgorithm(a, alg,
			spmspv.Options{SortOutput: true, HybridThreshold: 0.25})
		b.Run(alg.String(), func(b *testing.B) {
			y := spmspv.NewVector(0, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mu.MultiplyMasked(x, y, spmspv.MinSelect2nd, mask, true)
			}
		})
	}
}

// BenchmarkMultiClusterBatch compares batched multi-seed clustering
// against the per-seed loop it replaces.
func BenchmarkMultiClusterBatch(b *testing.B) {
	a := spmspv.RMAT(spmspv.DefaultRMAT(12), 9)
	mu := spmspv.NewWithAlgorithm(a, spmspv.Bucket, spmspv.Options{SortOutput: true})
	seeds := spmspv.SpreadSources(a.NumCols, 1, 8)
	opt := spmspv.ACLOptions{Epsilon: 1e-4}
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spmspv.MultiCluster(mu, seeds, opt)
		}
	})
	b.Run("per-seed-loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, s := range seeds {
				spmspv.LocalCluster(mu, s, opt)
			}
		}
	})
}
