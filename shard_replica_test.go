package spmspv_test

import (
	"context"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	spmspv "spmspv"
	"spmspv/internal/testutil"
)

// killAfterBackend serves its first killAfter Do calls, then fails
// every later one — the deterministic "replica dies mid-run" stand-in
// (flakyBackend's switch is externally timed; this one trips itself at
// an exact call count, so the death reliably lands mid-BFS).
type killAfterBackend struct {
	inner     spmspv.ShardBackend
	killAfter int64
	calls     atomic.Int64
}

func (f *killAfterBackend) Do(req *spmspv.Request) (*spmspv.Response, error) {
	if f.calls.Add(1) > f.killAfter {
		return nil, &spmspv.WireError{Code: spmspv.CodeInternal, Message: "replica killed mid-run (injected)"}
	}
	return f.inner.Do(req)
}

func (f *killAfterBackend) Run(p *spmspv.Program) (*spmspv.ProgramResponse, error) {
	return f.inner.Run(p)
}

func (f *killAfterBackend) PutMatrix(name string, a *spmspv.Matrix) (*spmspv.StoreStat, error) {
	return f.inner.PutMatrix(name, a)
}

func (f *killAfterBackend) DeleteMatrix(name string) error { return f.inner.DeleteMatrix(name) }

func (f *killAfterBackend) Matrix(name string) (*spmspv.StoreStat, error) {
	return f.inner.Matrix(name)
}

// TestReplicaFailover is the tentpole acceptance test: with R replicas
// per band, killing one replica mid-ProgramBFS must (a) produce a
// parents vector bit-identical to the unsharded run, (b) consume ZERO
// retry rounds — the failure is absorbed by in-round failover — and
// (c) be observable through the new failovers counters and the
// replica's membership state.
func TestReplicaFailover(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	a := testutil.RandomCSC(rng, 160, 160, 3)
	opts := []spmspv.Option{spmspv.WithEngineOptions(engineOptions(2))}

	st := spmspv.NewStore(opts...)
	if err := st.Put("g", a); err != nil {
		t.Fatal(err)
	}
	want, err := spmspv.ProgramBFS(st, "g", a.NumCols, 0, 0)
	if err != nil {
		t.Fatal(err)
	}

	for _, r := range []int{2, 3} {
		// 2 bands × r replicas; band 1's primary dies after 2 calls.
		var backends []spmspv.ShardBackend
		var victim *killAfterBackend
		for w := 0; w < 2; w++ {
			for k := 0; k < r; k++ {
				var b spmspv.ShardBackend = spmspv.NewStore(opts...)
				if w == 1 && k == 0 {
					victim = &killAfterBackend{inner: b, killAfter: 2}
					b = victim
				}
				backends = append(backends, b)
			}
		}
		ss, err := spmspv.NewShardedStore(backends,
			spmspv.WithReplication(r),
			spmspv.WithShardRetries(2),
			spmspv.WithShardBackoff(time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		if err := ss.Put("g", a); err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}

		got, err := spmspv.ProgramBFS(ss, "g", a.NumCols, 0, 0)
		if err != nil {
			t.Fatalf("r=%d: BFS across replica death: %v", r, err)
		}
		compareBFS(t, "replica-failover", got, want)
		if victim.calls.Load() <= victim.killAfter {
			t.Fatalf("r=%d: victim died before the run started (%d calls)", r, victim.calls.Load())
		}

		stat, err := ss.Stats("g")
		if err != nil {
			t.Fatal(err)
		}
		if stat.Serve.Retries != 0 {
			t.Fatalf("r=%d: replica death burned %d retry rounds, want 0 (in-round failover)",
				r, stat.Serve.Retries)
		}
		if stat.Serve.Failovers == 0 {
			t.Fatalf("r=%d: matrix counters report no failovers: %+v", r, stat.Serve)
		}

		stats := ss.ShardStats()
		ks := stats[r] // band-major: band 1 replica 0
		if ks.Shard != 1 || ks.Replica != 0 {
			t.Fatalf("r=%d: ShardStats order: got shard %d replica %d at index %d",
				r, ks.Shard, ks.Replica, r)
		}
		if ks.Serve.Failovers == 0 {
			t.Fatalf("r=%d: killed replica reports no failovers: %+v", r, ks.Serve)
		}
		if ks.State == "alive" {
			t.Fatalf("r=%d: killed replica still reported alive", r)
		}
		if ks.ProbeFailures == 0 {
			t.Fatalf("r=%d: killed replica reports no probe failures", r)
		}
		if ks.MemberEpoch == 0 {
			t.Fatalf("r=%d: member epoch never advanced despite a state transition", r)
		}
		// The band's healthy siblings stayed alive, and the
		// failed-over traffic landed on (at least) the first of them —
		// failover stops at the first success, later replicas stay
		// cold.
		carried := false
		for k := 1; k < r; k++ {
			hs := stats[r+k]
			if hs.State != "alive" {
				t.Fatalf("r=%d: sibling replica %d not alive: %+v", r, k, hs)
			}
			carried = carried || hs.Serve.Requests > 0
		}
		if !carried {
			t.Fatalf("r=%d: no sibling carried the failed-over traffic", r)
		}
	}
}

// TestReplicaAllDead pins the fallback boundary: when EVERY replica of
// a band is dead, in-round failover is exhausted, the bounded retry
// rounds run (and are counted), and the request fails naming the
// shard.
func TestReplicaAllDead(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	a := testutil.RandomCSC(rng, 80, 80, 3)
	opts := []spmspv.Option{spmspv.WithEngineOptions(engineOptions(1))}

	f0 := &flakyBackend{inner: spmspv.NewStore(opts...)}
	f1 := &flakyBackend{inner: spmspv.NewStore(opts...)}
	backends := []spmspv.ShardBackend{
		spmspv.NewStore(opts...), spmspv.NewStore(opts...), // band 0
		f0, f1, // band 1
	}
	ss, err := spmspv.NewShardedStore(backends,
		spmspv.WithReplication(2),
		spmspv.WithShardRetries(1),
		spmspv.WithShardBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.Put("g", a); err != nil {
		t.Fatal(err)
	}

	f0.down.Store(true)
	f1.down.Store(true)
	_, err = ss.Do(&spmspv.Request{Matrix: "g",
		X:    testutil.RandomVector(rng, a.NumCols, 8, true),
		Desc: spmspv.Desc{Semiring: "arithmetic"}})
	if err == nil || !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("whole-group death: got %v, want an error naming shard 1", err)
	}
	stat, serr := ss.Stats("g")
	if serr != nil || stat.Serve.Retries == 0 {
		t.Fatalf("whole-group death burned no retry rounds: %+v, %v", stat.Serve, serr)
	}

	// Revive one replica: the next request must succeed again (the
	// membership deprioritizes the still-dead sibling, it does not
	// eject it).
	f1.down.Store(false)
	if _, err := ss.Do(&spmspv.Request{Matrix: "g",
		X:    testutil.RandomVector(rng, a.NumCols, 8, true),
		Desc: spmspv.Desc{Semiring: "arithmetic"}}); err != nil {
		t.Fatalf("after revival: %v", err)
	}
}

// TestReplicaFlapping hammers a coordinator whose replica flaps up and
// down while concurrent requests stream through — the -race exercise
// for the membership state machine, the epoch-versioned views and the
// failover path all running at once. Every request must succeed: the
// sibling replica is always up, so failover covers every down window.
func TestReplicaFlapping(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	a := randomIntCSC(t, rng, 100, 100, 4)
	opts := []spmspv.Option{spmspv.WithEngineOptions(engineOptions(2))}

	st := spmspv.NewStore(opts...)
	if err := st.Put("g", a); err != nil {
		t.Fatal(err)
	}

	flap := &flakyBackend{inner: spmspv.NewStore(opts...)}
	backends := []spmspv.ShardBackend{
		flap, spmspv.NewStore(opts...), // band 0: flapping primary
		spmspv.NewStore(opts...), spmspv.NewStore(opts...), // band 1
	}
	ss, err := spmspv.NewShardedStore(backends,
		spmspv.WithReplication(2),
		spmspv.WithShardRetries(2),
		spmspv.WithShardBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.Put("g", a); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	flapperDone := make(chan struct{})
	go func() {
		defer close(flapperDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			flap.down.Store(i%2 == 0)
			time.Sleep(200 * time.Microsecond)
		}
	}()

	const conc, iters = 4, 25
	wants := make([]*spmspv.Vector, conc)
	xs := make([]*spmspv.Vector, conc)
	for q := range xs {
		xs[q] = randomIntVector(rng, a.NumCols, 1+rng.Intn(16))
		want, err := st.Do(&spmspv.Request{Matrix: "g", X: xs[q], Desc: spmspv.Desc{Semiring: "arithmetic"}})
		if err != nil {
			t.Fatal(err)
		}
		wants[q] = want.Y
	}
	errs := make(chan error, conc)
	for q := 0; q < conc; q++ {
		go func(q int) {
			for i := 0; i < iters; i++ {
				got, err := ss.Do(&spmspv.Request{Matrix: "g", X: xs[q], Desc: spmspv.Desc{Semiring: "arithmetic"}})
				if err != nil {
					errs <- err
					return
				}
				if got.Y.NNZ() != wants[q].NNZ() {
					errs <- &spmspv.WireError{Code: spmspv.CodeInternal, Message: "flapping run diverged"}
					return
				}
			}
			errs <- nil
		}(q)
	}
	for q := 0; q < conc; q++ {
		if err := <-errs; err != nil {
			t.Fatalf("request stream under flapping replica: %v", err)
		}
	}
	close(stop)
	<-flapperDone
}

// TestReplicatedPutFanout pins the write path: Put lands band w's
// piece on EVERY replica of group w, Delete removes all copies, and a
// replica that rejects its upload rolls the whole Put back — no
// replica keeps a piece of a failed upload.
func TestReplicatedPutFanout(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	a := randomIntCSC(t, rng, 90, 70, 3)
	opts := []spmspv.Option{spmspv.WithEngineOptions(engineOptions(1))}

	stores := make([]*spmspv.Store, 4)
	backends := make([]spmspv.ShardBackend, 4)
	for i := range stores {
		stores[i] = spmspv.NewStore(opts...)
		backends[i] = stores[i]
	}
	ss, err := spmspv.NewShardedStore(backends, spmspv.WithReplication(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.Put("g", a); err != nil {
		t.Fatal(err)
	}
	bounds := spmspv.PieceBounds(a.NumRows, 2)
	for i, bs := range stores {
		w := i / 2
		stat, err := bs.Matrix("g")
		if err != nil {
			t.Fatalf("replica %d lacks its piece: %v", i, err)
		}
		if stat.Rows != bounds[w+1]-bounds[w] || stat.Cols != a.NumCols {
			t.Fatalf("replica %d holds %dx%d, want %dx%d",
				i, stat.Rows, stat.Cols, bounds[w+1]-bounds[w], a.NumCols)
		}
	}
	if !ss.Delete("g") {
		t.Fatal("Delete reported the matrix unregistered")
	}
	for i, bs := range stores {
		if _, err := bs.Matrix("g"); err == nil {
			t.Fatalf("replica %d still holds the deleted matrix", i)
		}
	}

	// Rollback: one replica down during upload → Put fails, and the
	// replicas that DID accept their piece give it back.
	flaky := &flakyBackend{inner: spmspv.NewStore(opts...)}
	flaky.down.Store(true)
	rb := []spmspv.ShardBackend{stores[0], stores[1], stores[2], &putFailBackend{flaky}}
	ss2, err := spmspv.NewShardedStore(rb, spmspv.WithReplication(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := ss2.Put("h", a); err == nil {
		t.Fatal("Put with a failing replica did not fail")
	}
	for i, bs := range stores[:3] {
		if _, err := bs.Matrix("h"); err == nil {
			t.Fatalf("failed Put left its piece on replica %d", i)
		}
	}
}

// putFailBackend fails PutMatrix while its flaky core is down
// (flakyBackend only fails Do).
type putFailBackend struct {
	*flakyBackend
}

func (f *putFailBackend) PutMatrix(name string, a *spmspv.Matrix) (*spmspv.StoreStat, error) {
	if f.down.Load() {
		return nil, &spmspv.WireError{Code: spmspv.CodeInternal, Message: "upload refused (injected)"}
	}
	return f.flakyBackend.PutMatrix(name, a)
}

// TestReplicatedDiscovery covers the rebooted-worker scenarios the
// membership-ordered probe handles: a band resolves through a healthy
// sibling when its primary is down at discovery time, and a replica
// that answers-but-lacks-the-piece (a worker rebooted without its
// preload) does not hide the sibling's copy.
func TestReplicatedDiscovery(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	a := randomIntCSC(t, rng, 101, 101, 4)
	opts := []spmspv.Option{spmspv.WithEngineOptions(engineOptions(1))}

	st := spmspv.NewStore(opts...)
	if err := st.Put("g", a); err != nil {
		t.Fatal(err)
	}
	x := randomIntVector(rng, a.NumCols, 12)
	req := &spmspv.Request{Matrix: "g", X: x, Desc: spmspv.Desc{Semiring: "arithmetic"}}
	want, err := st.Do(req)
	if err != nil {
		t.Fatal(err)
	}

	// Preload pieces worker-style onto 2 bands × 2 replicas, except:
	// band 0's primary is DOWN at discovery, and band 1's primary
	// rebooted empty (responds, holds nothing).
	bounds := spmspv.PieceBounds(a.NumRows, 2)
	newPiece := func(w int, load bool) *spmspv.Store {
		bs := spmspv.NewStore(opts...)
		if load {
			if err := bs.Put("g", spmspv.RowSlice(a, bounds[w], bounds[w+1])); err != nil {
				t.Fatal(err)
			}
		}
		return bs
	}
	downPrimary := &flakyBackend{inner: newPiece(0, true)}
	downPrimary.down.Store(true)
	groups := [][]spmspv.ShardBackend{
		{downPrimary, newPiece(0, true)},
		{newPiece(1, false), newPiece(1, true)}, // primary rebooted empty
	}
	ss, err := spmspv.NewReplicatedShardedStore(groups,
		spmspv.WithShardRetries(1), spmspv.WithShardBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ss.Do(req)
	if err != nil {
		t.Fatalf("discovery through degraded replicas: %v", err)
	}
	sameVector(t, "replicated-discovery", got.Y, want.Y)

	// The down primary was health-flagged by its failed probe. The
	// empty-but-responsive one answered the discovery probe (success)
	// but failed over during the scatter (it holds nothing), so it may
	// be suspect — it must not be dead, and its sibling carried the
	// band.
	stats := ss.ShardStats()
	if stats[0].State == "alive" {
		t.Fatalf("down primary still alive after failed discovery probe: %+v", stats[0])
	}
	if stats[2].State == "dead" {
		t.Fatalf("empty-but-responsive replica flagged dead: %+v", stats[2])
	}
	if stats[3].State != "alive" || stats[3].Serve.Requests == 0 {
		t.Fatalf("band 1 sibling did not carry the band: %+v", stats[3])
	}
}

// TestProbeNow drives the coordinator's synchronous probe round: a
// probe-capable backend (a *Store) reports healthy; after swapping in
// a dead HTTP worker the probe flags it without any serving traffic.
func TestProbeNow(t *testing.T) {
	opts := []spmspv.Option{spmspv.WithEngineOptions(engineOptions(1))}
	dead := spmspv.NewClient("http://127.0.0.1:1", spmspv.WithTimeout(200*time.Millisecond))
	backends := []spmspv.ShardBackend{spmspv.NewStore(opts...), dead}
	ss, err := spmspv.NewShardedStore(backends, spmspv.WithReplication(2),
		spmspv.WithProbeTimeout(250*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()

	epoch0 := ss.MemberEpoch()
	ss.ProbeNow(context.Background())
	stats := ss.ShardStats()
	if stats[0].State != "alive" {
		t.Fatalf("local store flagged unhealthy by probe: %+v", stats[0])
	}
	if stats[1].State == "alive" {
		t.Fatalf("unreachable worker still alive after probe: %+v", stats[1])
	}
	if stats[1].ProbeFailures == 0 {
		t.Fatalf("unreachable worker reports no probe failures: %+v", stats[1])
	}
	if ss.MemberEpoch() == epoch0 {
		t.Fatal("member epoch did not advance on a state transition")
	}
}
