package spmspv

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Request is the wire form of one descriptor-driven multiply — the
// JSON contract the planned cmd/spmspv-serve network service speaks,
// usable today by any caller that wants to hand a whole multiply
// around as data. A request is a matrix reference, one input vector
// (X) or a batch (Xs), and the Desc; the semiring travels by name in
// the Desc because function values do not serialize.
//
// Exactly one of X and Xs must be set: X executes through Mult, Xs
// through MultBatch.
type Request struct {
	// Matrix names the matrix the request multiplies against — a
	// server-side identifier (the per-matrix engine cache key), unused
	// for in-process execution against an explicit Multiplier.
	Matrix string `json:"matrix,omitempty"`
	// X is the input vector of a single multiply.
	X *Vector `json:"x,omitempty"`
	// Xs is the input batch of a MultBatch request.
	Xs []*Vector `json:"xs,omitempty"`
	// Desc carries every capability switch, the output-representation
	// request and the semiring name.
	Desc Desc `json:"desc"`
}

// Response is the wire form of a multiply result: Y for single
// requests, Ys for batches, plus the representation the payload
// actually carries. A request whose descriptor asks for OutputBitmap
// is answered in the bitmap wire form (YBits / YsBits, the sparse
// ind/val encoding of BitVector) with OutputRep "bitmap"; every other
// request — OutputAuto included, since "richest native representation"
// is an in-process concept the wire cannot express more cheaply than
// the list — is answered in list form with OutputRep "list".
//
// Err carries a structured wire error (code + message) when the
// request failed, so clients distinguish validation failures from
// unknown matrices from server faults without parsing transport-level
// status text.
type Response struct {
	Y         *Vector      `json:"y,omitempty"`
	Ys        []*Vector    `json:"ys,omitempty"`
	YBits     *BitVector   `json:"y_bits,omitempty"`
	YsBits    []*BitVector `json:"ys_bits,omitempty"`
	OutputRep string       `json:"output_rep,omitempty"`
	Err       *WireError   `json:"error,omitempty"`
}

// WireError is the structured error form responses carry: a stable
// machine-readable code plus a human-readable message. It implements
// error, so the same value flows through in-process Store calls and
// HTTP round trips — algorithm code sees identical failures either
// way.
type WireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// The wire error codes.
const (
	// CodeBadRequest: the payload could not be decoded at all.
	CodeBadRequest = "bad_request"
	// CodeInvalidRequest: the payload decoded but failed validation
	// (Request.Validate, Program.Validate, dimension mismatches).
	CodeInvalidRequest = "invalid_request"
	// CodeUnknownMatrix: the named matrix is not registered.
	CodeUnknownMatrix = "unknown_matrix"
	// CodeUnknownProgram: the named stored program is not registered.
	CodeUnknownProgram = "unknown_program"
	// CodeNotAcceptable: the Accept header named no wire form the
	// server can produce (offer ContentTypeJSON or ContentTypeBinary).
	CodeNotAcceptable = "not_acceptable"
	// CodeInternal: the server failed executing a well-formed request.
	CodeInternal = "internal"
)

// Error implements the error interface.
func (e *WireError) Error() string { return e.Code + ": " + e.Message }

// wireErrorf builds a WireError with a formatted message.
func wireErrorf(code, format string, args ...any) *WireError {
	return &WireError{Code: code, Message: fmt.Sprintf(format, args...)}
}

// AsWireError coerces an error into its structured wire form: a
// *WireError passes through, anything else becomes CodeInternal.
func AsWireError(err error) *WireError {
	var we *WireError
	if errors.As(err, &we) {
		return we
	}
	return &WireError{Code: CodeInternal, Message: err.Error()}
}

// DecodeRequest parses a JSON-encoded Request.
func DecodeRequest(data []byte) (*Request, error) {
	var req Request
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("spmspv: decoding request: %w", err)
	}
	return &req, nil
}

// Validate checks the request against the multiplier-independent rules
// plus the dimensions of the matrix it will run against: nrows×ncols
// are op(A)'s dimensions BEFORE the descriptor's transpose is applied.
// It returns the first violation; a valid request cannot make Do (or
// Mult underneath it) panic.
func (r *Request) Validate(nrows, ncols Index) error {
	if err := r.Desc.Validate(); err != nil {
		return err
	}
	if (r.X == nil) == (r.Xs == nil) {
		return fmt.Errorf("spmspv: request must set exactly one of x and xs")
	}
	if r.X != nil && r.Desc.Masks != nil {
		return fmt.Errorf("spmspv: single request with per-slot masks (use desc.mask)")
	}
	if r.Xs != nil && r.Desc.Accum {
		// Batch accumulate has no native engine path (it would degrade
		// to a sequential slot loop), and over the wire the accumulator —
		// the output's prior contents — cannot ride along at all: the
		// server's outputs always start empty, so the combination is at
		// best a silent plain multiply. Programs are the server-side home
		// for accumulate loops: op outputs persist between ops.
		return fmt.Errorf("spmspv: batch request with desc.accumulate (accumulator state cannot ride the wire; use a program)")
	}
	if r.Desc.Semiring == "" {
		return fmt.Errorf("spmspv: request descriptor must name a semiring")
	}
	if _, ok := ParseSemiring(r.Desc.Semiring); !ok {
		return fmt.Errorf("spmspv: unknown semiring %q", r.Desc.Semiring)
	}
	inDim, outDim := ncols, nrows
	if r.Desc.Transpose {
		inDim, outDim = nrows, ncols
	}
	checkVec := func(x *Vector, what string) error {
		if x == nil {
			return fmt.Errorf("spmspv: nil %s in request", what)
		}
		if x.N != inDim {
			return fmt.Errorf("spmspv: %s has dimension %d, want %d", what, x.N, inDim)
		}
		return x.Validate()
	}
	if r.X != nil {
		if err := checkVec(r.X, "x"); err != nil {
			return err
		}
	}
	for q, x := range r.Xs {
		if err := checkVec(x, fmt.Sprintf("xs[%d]", q)); err != nil {
			return err
		}
	}
	if r.Xs != nil && r.Desc.BatchWidth > 0 && r.Desc.BatchWidth != len(r.Xs) {
		return fmt.Errorf("spmspv: request has %d inputs but batch_width %d", len(r.Xs), r.Desc.BatchWidth)
	}
	if r.Xs != nil && r.Desc.Masks != nil && len(r.Desc.Masks) != len(r.Xs) {
		return fmt.Errorf("spmspv: request has %d inputs but %d masks", len(r.Xs), len(r.Desc.Masks))
	}
	checkMask := func(mk *BitVector, what string) error {
		if mk != nil && mk.N < outDim {
			return fmt.Errorf("spmspv: %s has dimension %d, want ≥ %d", what, mk.N, outDim)
		}
		return nil
	}
	if err := checkMask(r.Desc.Mask, "mask"); err != nil {
		return err
	}
	for q, mk := range r.Desc.Masks {
		if err := checkMask(mk, fmt.Sprintf("masks[%d]", q)); err != nil {
			return err
		}
	}
	return nil
}

// Do executes a wire request against this multiplier and returns the
// response — the in-process form of what cmd/spmspv-serve will do per
// connection. The request is validated first, so malformed requests
// come back as errors rather than panics; Request.Matrix is ignored
// (the caller already resolved it to this multiplier).
func (m *Multiplier) Do(req *Request) (*Response, error) {
	if req == nil {
		return nil, fmt.Errorf("spmspv: nil request")
	}
	if err := req.Validate(m.a.NumRows, m.a.NumCols); err != nil {
		return nil, err
	}
	outDim := m.a.NumRows
	if req.Desc.Transpose {
		outDim = m.a.NumCols
	}
	// The response serializes the representation the descriptor asked
	// for: OutputBitmap ships the bitmap wire form, everything else the
	// list — honoring "auto" with a bitmap would build one the encoder
	// immediately discards.
	d := req.Desc
	wantBits := d.Output == OutputBitmap
	if !wantBits {
		d.Output = OutputList
	}
	resp := &Response{OutputRep: d.Output.String()}
	if req.X != nil {
		yf := NewOutputFrontier(outDim)
		m.Mult(NewFrontier(req.X), yf, Semiring{}, d)
		if wantBits {
			resp.YBits = yf.Bits()
		} else {
			resp.Y = yf.List()
		}
		return resp, nil
	}
	xs := make([]*Frontier, len(req.Xs))
	ys := make([]*Frontier, len(req.Xs))
	for q, x := range req.Xs {
		xs[q] = NewFrontier(x)
		ys[q] = NewOutputFrontier(outDim)
	}
	m.MultBatch(xs, ys, Semiring{}, d)
	if wantBits {
		resp.YsBits = make([]*BitVector, len(ys))
		for q, yf := range ys {
			resp.YsBits[q] = yf.Bits()
		}
	} else {
		resp.Ys = make([]*Vector, len(ys))
		for q, yf := range ys {
			resp.Ys[q] = yf.List()
		}
	}
	return resp, nil
}
