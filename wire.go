package spmspv

import (
	"encoding/json"
	"fmt"
)

// Request is the wire form of one descriptor-driven multiply — the
// JSON contract the planned cmd/spmspv-serve network service speaks,
// usable today by any caller that wants to hand a whole multiply
// around as data. A request is a matrix reference, one input vector
// (X) or a batch (Xs), and the Desc; the semiring travels by name in
// the Desc because function values do not serialize.
//
// Exactly one of X and Xs must be set: X executes through Mult, Xs
// through MultBatch.
type Request struct {
	// Matrix names the matrix the request multiplies against — a
	// server-side identifier (the per-matrix engine cache key), unused
	// for in-process execution against an explicit Multiplier.
	Matrix string `json:"matrix,omitempty"`
	// X is the input vector of a single multiply.
	X *Vector `json:"x,omitempty"`
	// Xs is the input batch of a MultBatch request.
	Xs []*Vector `json:"xs,omitempty"`
	// Desc carries every capability switch, the output-representation
	// request and the semiring name.
	Desc Desc `json:"desc"`
}

// Response is the wire form of a multiply result: Y for single
// requests, Ys for batches, plus the representation the payload
// carries. Do always serializes the list form (currently the only
// representation with a wire encoding), so OutputRep is "list"; a
// streaming transport that ships bitmaps can widen it.
type Response struct {
	Y         *Vector   `json:"y,omitempty"`
	Ys        []*Vector `json:"ys,omitempty"`
	OutputRep string    `json:"output_rep,omitempty"`
}

// DecodeRequest parses a JSON-encoded Request.
func DecodeRequest(data []byte) (*Request, error) {
	var req Request
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("spmspv: decoding request: %w", err)
	}
	return &req, nil
}

// Validate checks the request against the multiplier-independent rules
// plus the dimensions of the matrix it will run against: nrows×ncols
// are op(A)'s dimensions BEFORE the descriptor's transpose is applied.
// It returns the first violation; a valid request cannot make Do (or
// Mult underneath it) panic.
func (r *Request) Validate(nrows, ncols Index) error {
	if err := r.Desc.Validate(); err != nil {
		return err
	}
	if (r.X == nil) == (r.Xs == nil) {
		return fmt.Errorf("spmspv: request must set exactly one of x and xs")
	}
	if r.X != nil && r.Desc.Masks != nil {
		return fmt.Errorf("spmspv: single request with per-slot masks (use desc.mask)")
	}
	if r.Desc.Semiring == "" {
		return fmt.Errorf("spmspv: request descriptor must name a semiring")
	}
	if _, ok := ParseSemiring(r.Desc.Semiring); !ok {
		return fmt.Errorf("spmspv: unknown semiring %q", r.Desc.Semiring)
	}
	inDim, outDim := ncols, nrows
	if r.Desc.Transpose {
		inDim, outDim = nrows, ncols
	}
	checkVec := func(x *Vector, what string) error {
		if x == nil {
			return fmt.Errorf("spmspv: nil %s in request", what)
		}
		if x.N != inDim {
			return fmt.Errorf("spmspv: %s has dimension %d, want %d", what, x.N, inDim)
		}
		return x.Validate()
	}
	if r.X != nil {
		if err := checkVec(r.X, "x"); err != nil {
			return err
		}
	}
	for q, x := range r.Xs {
		if err := checkVec(x, fmt.Sprintf("xs[%d]", q)); err != nil {
			return err
		}
	}
	if r.Xs != nil && r.Desc.BatchWidth > 0 && r.Desc.BatchWidth != len(r.Xs) {
		return fmt.Errorf("spmspv: request has %d inputs but batch_width %d", len(r.Xs), r.Desc.BatchWidth)
	}
	if r.Xs != nil && r.Desc.Masks != nil && len(r.Desc.Masks) != len(r.Xs) {
		return fmt.Errorf("spmspv: request has %d inputs but %d masks", len(r.Xs), len(r.Desc.Masks))
	}
	checkMask := func(mk *BitVector, what string) error {
		if mk != nil && mk.N < outDim {
			return fmt.Errorf("spmspv: %s has dimension %d, want ≥ %d", what, mk.N, outDim)
		}
		return nil
	}
	if err := checkMask(r.Desc.Mask, "mask"); err != nil {
		return err
	}
	for q, mk := range r.Desc.Masks {
		if err := checkMask(mk, fmt.Sprintf("masks[%d]", q)); err != nil {
			return err
		}
	}
	return nil
}

// Do executes a wire request against this multiplier and returns the
// response — the in-process form of what cmd/spmspv-serve will do per
// connection. The request is validated first, so malformed requests
// come back as errors rather than panics; Request.Matrix is ignored
// (the caller already resolved it to this multiplier).
func (m *Multiplier) Do(req *Request) (*Response, error) {
	if req == nil {
		return nil, fmt.Errorf("spmspv: nil request")
	}
	if err := req.Validate(m.a.NumRows, m.a.NumCols); err != nil {
		return nil, err
	}
	outDim := m.a.NumRows
	if req.Desc.Transpose {
		outDim = m.a.NumCols
	}
	// The response serializes the list representation, so execute with
	// the list-output shape: honoring a bitmap request would build a
	// bitmap the encoder immediately discards.
	d := req.Desc
	d.Output = OutputList
	resp := &Response{OutputRep: OutputList.String()}
	if req.X != nil {
		yf := NewOutputFrontier(outDim)
		m.Mult(NewFrontier(req.X), yf, Semiring{}, d)
		resp.Y = yf.List()
		return resp, nil
	}
	xs := make([]*Frontier, len(req.Xs))
	ys := make([]*Frontier, len(req.Xs))
	for q, x := range req.Xs {
		xs[q] = NewFrontier(x)
		ys[q] = NewOutputFrontier(outDim)
	}
	m.MultBatch(xs, ys, Semiring{}, d)
	resp.Ys = make([]*Vector, len(ys))
	for q, yf := range ys {
		resp.Ys[q] = yf.List()
	}
	return resp, nil
}
