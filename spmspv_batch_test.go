// Tests for the frontier/batch surface of the facade and the
// ParseAlgorithm / NewWithAlgorithm contracts.
package spmspv_test

import (
	"math/rand"
	"sync"
	"testing"

	spmspv "spmspv"
	"spmspv/internal/sparse"
	"spmspv/internal/testutil"
)

func TestParseAlgorithmAliasesAndUnknown(t *testing.T) {
	cases := []struct {
		name string
		want spmspv.Algorithm
		ok   bool
	}{
		{"bucket", spmspv.Bucket, true},
		{"sort", spmspv.SortBased, true},
		{"hybrid", spmspv.Hybrid, true},
		{"Hybrid", spmspv.Hybrid, true},
		{"HYBRID", spmspv.Hybrid, true},
		{"graphmat", spmspv.GraphMat, true},
		{"CombBLAS-SPA", spmspv.CombBLASSPA, true},
		{"SpMSpV-bucket", spmspv.Bucket, true},
		{"nonsense", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, ok := spmspv.ParseAlgorithm(c.name)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("ParseAlgorithm(%q) = (%v, %v), want (%v, %v)", c.name, got, ok, c.want, c.ok)
		}
		if !ok && got != 0 {
			t.Errorf("ParseAlgorithm(%q) must return the zero Algorithm on failure, got %v", c.name, got)
		}
	}
	// Every registered algorithm's own name parses back to itself.
	for _, alg := range spmspv.Algorithms() {
		got, ok := spmspv.ParseAlgorithm(alg.String())
		if !ok || got != alg {
			t.Errorf("ParseAlgorithm(%q) = (%v, %v), want (%v, true)", alg.String(), got, ok, alg)
		}
	}
}

// TestNewWithAlgorithmFallback pins the documented silent-fallback
// contract: an unregistered Algorithm value builds a Bucket multiplier
// that reports Algorithm() == Bucket.
func TestNewWithAlgorithmFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := testutil.RandomCSC(rng, 100, 100, 3)
	mu := spmspv.NewWithAlgorithm(a, spmspv.Algorithm(999), spmspv.Options{Threads: 1, SortOutput: true})
	if mu.Algorithm() != spmspv.Bucket {
		t.Fatalf("fallback multiplier reports %v, want Bucket", mu.Algorithm())
	}
	x := testutil.RandomVector(rng, 100, 20, true)
	want := spmspv.NewWithAlgorithm(a, spmspv.Bucket, spmspv.Options{Threads: 1, SortOutput: true}).
		Multiply(x, spmspv.Arithmetic)
	if got := mu.Multiply(x, spmspv.Arithmetic); !got.EqualValues(want, 0) {
		t.Error("fallback multiplier does not behave as Bucket")
	}
}

// TestMultiplyBatchEquivalentToLoopEveryEngine is the batch-layer
// property test: for EVERY registered engine, MultiplyBatch must equal
// a loop of Multiply calls across batch shapes, semirings and input
// densities (empty frontiers included).
func TestMultiplyBatchEquivalentToLoopEveryEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := testutil.RandomCSC(rng, 400, 400, 5)
	srs := []spmspv.Semiring{spmspv.Arithmetic, spmspv.MinSelect2nd, spmspv.MinPlus}

	for _, alg := range spmspv.Algorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			// A fixed threshold keeps the hybrid deterministic (both its
			// directions are covered by the density spread below).
			mu := spmspv.NewWithAlgorithm(a, alg,
				spmspv.Options{Threads: 2, SortOutput: true, HybridThreshold: 0.1})
			for _, k := range []int{1, 2, 5, 9} {
				xs := make([]*spmspv.Vector, k)
				ys := make([]*spmspv.Vector, k)
				for q := 0; q < k; q++ {
					f := (q * 97) % 300 // spreads 0 … dense across the batch
					xs[q] = testutil.RandomVector(rng, 400, f, true)
					ys[q] = spmspv.NewVector(0, 0)
				}
				for _, sr := range srs {
					mu.MultiplyBatch(xs, ys, sr)
					for q := 0; q < k; q++ {
						want := spmspv.NewVector(0, 0)
						mu.MultiplyInto(xs[q], want, sr)
						if !ys[q].EqualValues(want, 1e-9) {
							t.Fatalf("k=%d sr=%s frontier %d: batch ≠ loop", k, sr.Name, q)
						}
					}
				}
			}
		})
	}
}

// TestMultiplyBatchConcurrentShared hammers ONE shared Multiplier with
// concurrent MultiplyBatch calls (meaningful under -race): the batch
// path borrows pooled workspaces exactly like single multiplies.
func TestMultiplyBatchConcurrentShared(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := testutil.RandomCSC(rng, 500, 500, 5)

	for _, alg := range []spmspv.Algorithm{spmspv.Bucket, spmspv.Hybrid} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			mu := spmspv.NewWithAlgorithm(a, alg,
				spmspv.Options{Threads: 2, SortOutput: true, HybridThreshold: 0.1})
			const k = 4
			xs := make([]*spmspv.Vector, k)
			want := make([]*spmspv.Vector, k)
			for q := 0; q < k; q++ {
				xs[q] = testutil.RandomVector(rng, 500, 10+q*60, true)
				want[q] = mu.Multiply(xs[q], spmspv.Arithmetic)
			}
			var wg sync.WaitGroup
			errs := make([]string, 8)
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					ys := make([]*spmspv.Vector, k)
					for q := range ys {
						ys[q] = spmspv.NewVector(0, 0)
					}
					for rep := 0; rep < 15; rep++ {
						mu.MultiplyBatch(xs, ys, spmspv.Arithmetic)
						for q := range ys {
							if !ys[q].EqualValues(want[q], 1e-9) {
								errs[g] = "batch result mismatch under concurrency"
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
			for g, e := range errs {
				if e != "" {
					t.Errorf("goroutine %d: %s", g, e)
				}
			}
		})
	}
}

// TestMultiplyFrontierInto checks the frontier path end to end: one
// frontier fed to a list-preferring and a bitmap-preferring engine
// produces identical results, and the bitmap is built exactly once.
func TestMultiplyFrontierInto(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	a := testutil.RandomCSC(rng, 300, 300, 4)
	x := testutil.RandomVector(rng, 300, 60, true)
	fr := spmspv.NewFrontier(x)

	bucket := spmspv.NewWithAlgorithm(a, spmspv.Bucket, spmspv.Options{Threads: 2, SortOutput: true})
	gm := spmspv.NewWithAlgorithm(a, spmspv.GraphMat, spmspv.Options{Threads: 2})
	want := bucket.Multiply(x, spmspv.Arithmetic)

	y := spmspv.NewVector(0, 0)
	bucket.MultiplyFrontierInto(fr, y, spmspv.Arithmetic)
	if !y.EqualValues(want, 1e-9) {
		t.Error("bucket frontier multiply differs")
	}

	sparse.ResetFrontierConversions()
	gm.MultiplyFrontierInto(fr, y, spmspv.Arithmetic)
	gm.MultiplyFrontierInto(fr, y, spmspv.Arithmetic) // second call: bitmap shared
	if !y.EqualValues(want, 1e-9) {
		t.Error("GraphMat frontier multiply differs")
	}
	if conv, _ := sparse.FrontierConversions(); conv != 1 {
		t.Errorf("two GraphMat calls on one frontier converted %d times, want 1", conv)
	}
	if c := gm.Counters(); c.FrontierConversions != 1 {
		t.Errorf("engine counters report %d conversions, want 1", c.FrontierConversions)
	}
}

// TestMultiBFSFacade runs the facade's multi-source BFS against
// per-source BFS on every engine with a native batch path.
func TestMultiBFSFacade(t *testing.T) {
	a := spmspv.RMAT(spmspv.DefaultRMAT(9), 6)
	sources := []spmspv.Index{0, 7, a.NumCols / 2}
	for _, alg := range []spmspv.Algorithm{spmspv.Bucket, spmspv.Hybrid} {
		mu := spmspv.NewWithAlgorithm(a, alg,
			spmspv.Options{Threads: 2, SortOutput: true, HybridThreshold: 0.1})
		res := spmspv.MultiBFS(mu, sources)
		for s, src := range sources {
			single := spmspv.BFS(mu, src)
			for v := range res.Levels[s] {
				if res.Levels[s][v] != single.Levels[v] {
					t.Fatalf("%v source %d: level[%d] = %d, want %d",
						alg, src, v, res.Levels[s][v], single.Levels[v])
				}
			}
		}
	}
}
