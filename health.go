package spmspv

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// HealthStatus is the reply of GET /v1/health — the lightweight
// liveness probe the membership layer polls shard workers with. It is
// deliberately cheap to serve (registry sizes and static identity, no
// engine work) so probing at a short interval costs the worker
// nothing.
type HealthStatus struct {
	// Status is "ok" whenever the server answers at all; the probe's
	// real signal is the HTTP round trip succeeding.
	Status string `json:"status"`
	// Engine identifies the serving backend: the configured SpMSpV
	// algorithm for a single-process store, "coordinator" for a shard
	// coordinator.
	Engine string `json:"engine"`
	// Matrices and Programs are the registry sizes.
	Matrices int `json:"matrices"`
	Programs int `json:"programs"`
	// UptimeNS is how long the serving process has been up.
	UptimeNS int64 `json:"uptime_ns"`
	// Shards and Replicas describe a coordinator's fleet (band count
	// and largest replica-group size); zero on a plain store.
	Shards   int `json:"shards,omitempty"`
	Replicas int `json:"replicas,omitempty"`
	// MemberEpoch is the coordinator's membership view version; it
	// increments on every member health-state transition.
	MemberEpoch uint64 `json:"member_epoch,omitempty"`
}

// healthMagic frames the binary wire form of a HealthStatus. The
// payload is pure structure — no vector sections — so the frame is
// just magic, version, and a length-prefixed JSON body, consistent
// with the envelope headers of the other message types.
const healthMagic = "SPHL"

// EncodeHealthBinary writes h in the binary wire form:
// "SPHL" magic, version uint32, length uint32, then the JSON body
// (little-endian words, like every other envelope).
func EncodeHealthBinary(w io.Writer, h *HealthStatus) error {
	body, err := json.Marshal(h)
	if err != nil {
		return fmt.Errorf("spmspv: encoding health: %w", err)
	}
	var hdr [12]byte
	copy(hdr[0:4], healthMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], envelopeVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// DecodeHealthBinary reads the SPHL frame.
func DecodeHealthBinary(r io.Reader) (*HealthStatus, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("spmspv: reading health frame: %w", err)
	}
	if string(hdr[0:4]) != healthMagic {
		return nil, fmt.Errorf("spmspv: bad health magic %q", hdr[0:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != envelopeVersion {
		return nil, fmt.Errorf("spmspv: unsupported health frame version %d", v)
	}
	n := binary.LittleEndian.Uint32(hdr[8:12])
	if n > maxEnvelopeHeader {
		return nil, fmt.Errorf("spmspv: health frame claims %d body bytes", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("spmspv: reading health body: %w", err)
	}
	var h HealthStatus
	if err := json.Unmarshal(body, &h); err != nil {
		return nil, fmt.Errorf("spmspv: decoding health: %w", err)
	}
	return &h, nil
}

// health reports the store's liveness summary for GET /v1/health: the
// engine its entries build and the registry sizes. The server layer
// fills Status and UptimeNS.
func (st *Store) health() HealthStatus {
	cfg := multiplierConfig{alg: Bucket}
	for _, o := range st.opts {
		o(&cfg)
	}
	st.mu.RLock()
	n := len(st.entries)
	st.mu.RUnlock()
	return HealthStatus{
		Engine:   cfg.alg.String(),
		Matrices: n,
		Programs: len(st.programs.list()),
	}
}

// Health is the in-process probe surface (the form the sharded
// coordinator's membership layer calls against local backends): always
// healthy when the store exists, mirroring Client.Health's shape.
func (st *Store) Health(ctx context.Context) (*HealthStatus, error) {
	if err := ctx.Err(); err != nil {
		return nil, wireErrorf(CodeInternal, "%v", err)
	}
	h := st.health()
	h.Status = "ok"
	return &h, nil
}

// Health probes the server's liveness endpoint (GET /v1/health) — the
// call the coordinator's membership layer issues per probe round. Any
// transport or HTTP failure means "not healthy"; the decoded status is
// informational.
func (c *Client) Health(ctx context.Context) (*HealthStatus, error) {
	var h HealthStatus
	if err := c.roundTrip(ctx, http.MethodGet, "/v1/health", nil, "", &h, envelopeError); err != nil {
		return nil, err
	}
	return &h, nil
}
