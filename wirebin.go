package spmspv

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"spmspv/internal/sparse"
)

// Binary wire envelopes — the serving path's answer to the JSON tax.
// Profiling attributes ~40% of per-request serving cost to JSON
// encode/decode of the response payload (strconv's ryu float
// formatting), a per-request cost the coalescing window cannot
// amortize. The envelope keeps the cheap-but-structured part of a
// message — the matrix name, the descriptor, op lists, error codes —
// as a small JSON header, and moves every vector payload into framed
// SPVB sections (internal/sparse/vecwire.go): raw little-endian words,
// encoded by memory copy, with bitmap payloads riding as raw uint64
// words so a support-only bitmap response never touches floats at all.
//
// Envelope layout (little-endian):
//
//	magic[4]  "SPRQ" | "SPRS" | "SPPG" | "SPPR"
//	version   uint32
//	headerLen uint32, then headerLen bytes of JSON (the message with
//	          its vector fields nulled)
//	nsections uint32
//	sections: role uint8, idx uint32, present uint8,
//	          then (if present) one SPVB frame
//
// Sections for slice-valued fields (xs, masks, ys, ...) appear in
// index order with contiguous idx, so the decoder rebuilds the slice —
// including nil slots (present=0), which per-slot masks legitimately
// contain — at its exact original length. Content negotiation
// (Accept / Content-Type on /v1/mult and /v1/program) picks between
// this form and JSON per message; see Server and Client.

// The wire content types the serving endpoints negotiate between.
// JSON remains the default for clients that express no preference.
const (
	// ContentTypeJSON is the JSON wire form's content type.
	ContentTypeJSON = "application/json"
	// ContentTypeBinary is the binary envelope's content type, offered
	// in Accept and Content-Type headers on /v1/mult and /v1/program.
	ContentTypeBinary = "application/x-spmspv-binary"
)

// The envelope magics, one per message type, so a body is
// self-identifying even without its Content-Type header (the server
// sniffs exactly like sparse.DecodeMatrix).
const (
	requestMagic      = "SPRQ"
	responseMagic     = "SPRS"
	programMagic      = "SPPG"
	programRespMagic  = "SPPR"
	invokeMagic       = "SPIV"
	envelopeVersion   = 1
	maxEnvelopeHeader = 1 << 26 // vectors ride in sections; a JSON header beyond 64 MiB is hostile
)

// Section roles: which field of the enclosing message a section's
// vector belongs to.
const (
	secX       = uint8(0)  // Request.X
	secXs      = uint8(1)  // Request.Xs[idx]
	secMask    = uint8(2)  // Desc.Mask
	secMasks   = uint8(3)  // Desc.Masks[idx]
	secY       = uint8(4)  // Response.Y
	secYs      = uint8(5)  // Response.Ys[idx]
	secYBits   = uint8(6)  // Response.YBits
	secYsBits  = uint8(7)  // Response.YsBits[idx]
	secOpX     = uint8(8)  // Program.Ops[idx].X
	secOpMask  = uint8(9)  // Program.Ops[idx].Desc.Mask
	secResultY = uint8(10) // ProgramResponse.Results[idx].Y
	secArgX    = uint8(11) // InvokeRequest.Args, idx = rank in sorted-name order
)

// wireSection is one vector payload awaiting encode. Exactly one of
// vec and bits is set; both nil encodes an explicit nil slot.
type wireSection struct {
	role uint8
	idx  uint32
	vec  *Vector
	bits *BitVector
}

// headerBufPool recycles the scratch buffers envelope encode uses for
// the JSON header (whose length must precede it on the wire). Subject
// to the same pooling knob as the sparse encoders, so benchmarks can
// measure the unpooled baseline.
var headerBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getHeaderBuf() *bytes.Buffer {
	if !WireBufferPoolingEnabled() {
		return new(bytes.Buffer)
	}
	b := headerBufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

func putHeaderBuf(b *bytes.Buffer) {
	if WireBufferPoolingEnabled() {
		headerBufPool.Put(b)
	}
}

// SetWireBufferPooling toggles the sync.Pool'd buffers behind every
// binary wire encoder — the envelope header scratch and the sparse
// codecs' buffered writers (on by default). It exists so benchmarks
// can measure the pooled and unpooled encode paths as independent
// levers; servers leave it on.
func SetWireBufferPooling(on bool) {
	wireBufferPooling.Store(on)
	sparse.SetEncodePooling(on)
}

// WireBufferPoolingEnabled reports the current pooling setting.
func WireBufferPoolingEnabled() bool { return wireBufferPooling.Load() }

var wireBufferPooling atomic.Bool

func init() { wireBufferPooling.Store(true) }

// SetMaxBitmapDim bounds the dimension the wire decoders (binary and
// JSON alike) will materialize a bitmap payload — a request mask, a
// bitmap output — for. Bitmap decode allocates O(n) storage from a
// header-claimed dimension, so the bound is what keeps a tiny hostile
// request from forcing a huge allocation; the default
// (sparse.DefaultMaxBitVecDim, 1<<27 entries) matches the server's
// default 1 GiB body cap. Values ≤ 0 restore the default.
func SetMaxBitmapDim(n int64) { sparse.SetMaxBitVecDim(n) }

// encodeEnvelope streams one envelope: magic, version, JSON header,
// then the sections as SPVB frames, through one pooled buffered
// writer — no intermediate per-message []byte.
func encodeEnvelope(w io.Writer, magic string, header any, secs []wireSection) error {
	hb := getHeaderBuf()
	defer putHeaderBuf(hb)
	if err := json.NewEncoder(hb).Encode(header); err != nil {
		return fmt.Errorf("spmspv: encoding wire header: %w", err)
	}
	bw := sparse.BorrowEncWriter(w)
	err := func() error {
		if _, err := bw.WriteString(magic); err != nil {
			return err
		}
		var buf [8]byte
		binary.LittleEndian.PutUint32(buf[0:], envelopeVersion)
		binary.LittleEndian.PutUint32(buf[4:], uint32(hb.Len()))
		if _, err := bw.Write(buf[:8]); err != nil {
			return err
		}
		if _, err := bw.Write(hb.Bytes()); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(buf[0:], uint32(len(secs)))
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
		for _, s := range secs {
			buf[0] = s.role
			binary.LittleEndian.PutUint32(buf[1:], s.idx)
			present := s.vec != nil || s.bits != nil
			if present {
				buf[5] = 1
			} else {
				buf[5] = 0
			}
			if _, err := bw.Write(buf[:6]); err != nil {
				return err
			}
			switch {
			case s.vec != nil:
				if err := sparse.EncodeVectorFrame(bw, s.vec); err != nil {
					return err
				}
			case s.bits != nil:
				if err := sparse.EncodeBitVecFrame(bw, s.bits); err != nil {
					return err
				}
			}
		}
		return nil
	}()
	if err != nil {
		sparse.ReturnEncWriter(bw)
		return err
	}
	return sparse.ReturnEncWriter(bw)
}

// decodeEnvelope reads one envelope: the header JSON is unmarshaled
// into header, then attach is called once per section with the
// decoded payload (vec OR bits per the role's natural type; both nil
// for an explicit nil slot).
func decodeEnvelope(r io.Reader, magic string, header any, attach func(role uint8, idx uint32, vec *Vector, bits *BitVector) error) error {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	var head [4]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return fmt.Errorf("spmspv: reading wire magic: %w", err)
	}
	if string(head[:]) != magic {
		return fmt.Errorf("spmspv: bad wire magic %q (want %s)", head[:], magic)
	}
	var buf [8]byte
	if _, err := io.ReadFull(br, buf[:8]); err != nil {
		return fmt.Errorf("spmspv: reading wire header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(buf[0:]); v != envelopeVersion {
		return fmt.Errorf("spmspv: unsupported wire version %d", v)
	}
	headerLen := int64(binary.LittleEndian.Uint32(buf[4:]))
	if headerLen > maxEnvelopeHeader {
		return fmt.Errorf("spmspv: implausible wire header length %d", headerLen)
	}
	hb := getHeaderBuf()
	defer putHeaderBuf(hb)
	// CopyN grows the buffer only as bytes actually arrive, so a
	// hostile length claim errors out instead of allocating up front.
	if _, err := io.CopyN(hb, br, headerLen); err != nil {
		return fmt.Errorf("spmspv: reading wire header: %w", err)
	}
	if err := json.Unmarshal(hb.Bytes(), header); err != nil {
		return fmt.Errorf("spmspv: decoding wire header: %w", err)
	}
	if _, err := io.ReadFull(br, buf[:4]); err != nil {
		return fmt.Errorf("spmspv: reading section count: %w", err)
	}
	nsec := binary.LittleEndian.Uint32(buf[:4])
	for s := uint32(0); s < nsec; s++ {
		if _, err := io.ReadFull(br, buf[:6]); err != nil {
			return fmt.Errorf("spmspv: reading section %d: %w", s, err)
		}
		role := buf[0]
		idx := binary.LittleEndian.Uint32(buf[1:5])
		present := buf[5] != 0
		var vec *Vector
		var bits *BitVector
		if present {
			var err error
			if roleIsBitmap(role) {
				bits, err = sparse.DecodeBitVecBinary(br)
			} else {
				vec, err = sparse.DecodeVectorBinary(br)
			}
			if err != nil {
				return fmt.Errorf("spmspv: decoding section %d (role %d): %w", s, role, err)
			}
		}
		if err := attach(role, idx, vec, bits); err != nil {
			return err
		}
	}
	return nil
}

// roleIsBitmap reports whether a role's payload is bitmap-typed
// (masks and bitmap outputs) rather than list-typed.
func roleIsBitmap(role uint8) bool {
	switch role {
	case secMask, secMasks, secYBits, secYsBits, secOpMask:
		return true
	}
	return false
}

// appendSlot enforces the in-order, contiguous-idx contract for
// slice-valued roles and appends v (possibly nil) to the slice.
func appendSlot[T any](slice []T, idx uint32, v T, what string) ([]T, error) {
	if int(idx) != len(slice) {
		return nil, fmt.Errorf("spmspv: %s section idx %d out of order (have %d)", what, idx, len(slice))
	}
	return append(slice, v), nil
}

// EncodeRequestBinary writes req as the binary envelope: the request
// minus its vectors as the JSON header, X/Xs/mask payloads as SPVB
// sections.
func EncodeRequestBinary(w io.Writer, req *Request) error {
	if req == nil {
		return fmt.Errorf("spmspv: encoding nil request")
	}
	hdr := *req
	hdr.X, hdr.Xs = nil, nil
	hdr.Desc.Mask, hdr.Desc.Masks = nil, nil
	var secs []wireSection
	if req.X != nil {
		secs = append(secs, wireSection{role: secX, vec: req.X})
	}
	for i, x := range req.Xs {
		secs = append(secs, wireSection{role: secXs, idx: uint32(i), vec: x})
	}
	if req.Desc.Mask != nil {
		secs = append(secs, wireSection{role: secMask, bits: req.Desc.Mask})
	}
	for i, m := range req.Desc.Masks {
		secs = append(secs, wireSection{role: secMasks, idx: uint32(i), bits: m})
	}
	return encodeEnvelope(w, requestMagic, &hdr, secs)
}

// DecodeRequestBinary parses a binary-envelope request.
func DecodeRequestBinary(r io.Reader) (*Request, error) {
	var req Request
	err := decodeEnvelope(r, requestMagic, &req, func(role uint8, idx uint32, vec *Vector, bits *BitVector) error {
		var err error
		switch role {
		case secX:
			req.X = vec
		case secXs:
			req.Xs, err = appendSlot(req.Xs, idx, vec, "xs")
		case secMask:
			req.Desc.Mask = bits
		case secMasks:
			req.Desc.Masks, err = appendSlot(req.Desc.Masks, idx, bits, "masks")
		default:
			err = fmt.Errorf("spmspv: unexpected section role %d in request", role)
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	return &req, nil
}

// EncodeResponseBinary writes resp as the binary envelope. This is the
// hot serving write: the Y/Ys payloads ride as raw SPVB frames and a
// bitmap response (YBits/YsBits) as raw words, so the per-request
// float-formatting cost of the JSON form disappears entirely.
func EncodeResponseBinary(w io.Writer, resp *Response) error {
	if resp == nil {
		return fmt.Errorf("spmspv: encoding nil response")
	}
	hdr := *resp
	hdr.Y, hdr.Ys, hdr.YBits, hdr.YsBits = nil, nil, nil, nil
	var secs []wireSection
	if resp.Y != nil {
		secs = append(secs, wireSection{role: secY, vec: resp.Y})
	}
	for i, y := range resp.Ys {
		secs = append(secs, wireSection{role: secYs, idx: uint32(i), vec: y})
	}
	if resp.YBits != nil {
		secs = append(secs, wireSection{role: secYBits, bits: resp.YBits})
	}
	for i, b := range resp.YsBits {
		secs = append(secs, wireSection{role: secYsBits, idx: uint32(i), bits: b})
	}
	return encodeEnvelope(w, responseMagic, &hdr, secs)
}

// DecodeResponseBinary parses a binary-envelope response.
func DecodeResponseBinary(r io.Reader) (*Response, error) {
	var resp Response
	err := decodeEnvelope(r, responseMagic, &resp, func(role uint8, idx uint32, vec *Vector, bits *BitVector) error {
		var err error
		switch role {
		case secY:
			resp.Y = vec
		case secYs:
			resp.Ys, err = appendSlot(resp.Ys, idx, vec, "ys")
		case secYBits:
			resp.YBits = bits
		case secYsBits:
			resp.YsBits, err = appendSlot(resp.YsBits, idx, bits, "ys_bits")
		default:
			err = fmt.Errorf("spmspv: unexpected section role %d in response", role)
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// EncodeProgramBinary writes p as the binary envelope: the op list
// (refs, descriptors, flags) stays JSON, while every op's literal
// input vector and literal mask ride as SPVB sections keyed by op
// index — so a multi-op payload (a seeded walk, an unrolled BFS)
// ships its frontiers binary exactly like a single request.
func EncodeProgramBinary(w io.Writer, p *Program) error {
	if p == nil {
		return fmt.Errorf("spmspv: encoding nil program")
	}
	hdr := *p
	hdr.Ops = make([]ProgramOp, len(p.Ops))
	copy(hdr.Ops, p.Ops)
	var secs []wireSection
	for k := range hdr.Ops {
		if x := hdr.Ops[k].X; x != nil {
			secs = append(secs, wireSection{role: secOpX, idx: uint32(k), vec: x})
			hdr.Ops[k].X = nil
		}
		if m := hdr.Ops[k].Desc.Mask; m != nil {
			secs = append(secs, wireSection{role: secOpMask, idx: uint32(k), bits: m})
			hdr.Ops[k].Desc.Mask = nil
		}
	}
	return encodeEnvelope(w, programMagic, &hdr, secs)
}

// DecodeProgramBinary parses a binary-envelope program.
func DecodeProgramBinary(r io.Reader) (*Program, error) {
	var p Program
	err := decodeEnvelope(r, programMagic, &p, func(role uint8, idx uint32, vec *Vector, bits *BitVector) error {
		if int(idx) >= len(p.Ops) {
			return fmt.Errorf("spmspv: section for op %d but program has %d ops", idx, len(p.Ops))
		}
		switch role {
		case secOpX:
			p.Ops[idx].X = vec
		case secOpMask:
			p.Ops[idx].Desc.Mask = bits
		default:
			return fmt.Errorf("spmspv: unexpected section role %d in program", role)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &p, nil
}

// EncodeInvokeRequestBinary writes inv as the binary envelope: the
// matrix override, scalar bindings and argument NAMES stay in the JSON
// header (each arg's value nulled), and the argument vectors ride as
// SPVB sections whose idx is the argument name's rank in sorted order —
// the header itself declares how many sections are legitimate, so a
// hostile section count cannot claim storage the bindings didn't.
func EncodeInvokeRequestBinary(w io.Writer, inv *InvokeRequest) error {
	if inv == nil {
		return fmt.Errorf("spmspv: encoding nil invoke request")
	}
	hdr := *inv
	var secs []wireSection
	if len(inv.Args) > 0 {
		names := make([]string, 0, len(inv.Args))
		for name := range inv.Args {
			names = append(names, name)
		}
		sort.Strings(names)
		hdr.Args = make(map[string]*Vector, len(names))
		for i, name := range names {
			hdr.Args[name] = nil
			secs = append(secs, wireSection{role: secArgX, idx: uint32(i), vec: inv.Args[name]})
		}
	}
	return encodeEnvelope(w, invokeMagic, &hdr, secs)
}

// DecodeInvokeRequestBinary parses a binary-envelope invoke request.
func DecodeInvokeRequestBinary(r io.Reader) (*InvokeRequest, error) {
	var inv InvokeRequest
	var names []string
	err := decodeEnvelope(r, invokeMagic, &inv, func(role uint8, idx uint32, vec *Vector, bits *BitVector) error {
		if role != secArgX {
			return fmt.Errorf("spmspv: unexpected section role %d in invoke request", role)
		}
		if names == nil {
			names = make([]string, 0, len(inv.Args))
			for name := range inv.Args {
				names = append(names, name)
			}
			sort.Strings(names)
		}
		if int(idx) >= len(names) {
			return fmt.Errorf("spmspv: section for arg %d but request binds %d args", idx, len(names))
		}
		inv.Args[names[idx]] = vec
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &inv, nil
}

// EncodeProgramResponseBinary writes resp as the binary envelope: the
// per-op metadata (op index, steps, error) stays JSON, each emitted
// "$k" ref output rides as an SPVB section keyed by its position in
// Results.
func EncodeProgramResponseBinary(w io.Writer, resp *ProgramResponse) error {
	if resp == nil {
		return fmt.Errorf("spmspv: encoding nil program response")
	}
	hdr := *resp
	hdr.Results = make([]ProgramResult, len(resp.Results))
	copy(hdr.Results, resp.Results)
	var secs []wireSection
	for k := range hdr.Results {
		if y := hdr.Results[k].Y; y != nil {
			secs = append(secs, wireSection{role: secResultY, idx: uint32(k), vec: y})
			hdr.Results[k].Y = nil
		}
	}
	return encodeEnvelope(w, programRespMagic, &hdr, secs)
}

// DecodeProgramResponseBinary parses a binary-envelope program
// response.
func DecodeProgramResponseBinary(r io.Reader) (*ProgramResponse, error) {
	var resp ProgramResponse
	err := decodeEnvelope(r, programRespMagic, &resp, func(role uint8, idx uint32, vec *Vector, bits *BitVector) error {
		if role != secResultY {
			return fmt.Errorf("spmspv: unexpected section role %d in program response", role)
		}
		if int(idx) >= len(resp.Results) {
			return fmt.Errorf("spmspv: section for result %d but response has %d results", idx, len(resp.Results))
		}
		resp.Results[idx].Y = vec
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &resp, nil
}
