// Package spmspv is a work-efficient parallel sparse matrix–sparse
// vector multiplication (SpMSpV) library — a from-scratch Go
// reproduction of:
//
//	A. Azad and A. Buluç, "A work-efficient parallel sparse
//	matrix-sparse vector multiplication algorithm", IPDPS 2017.
//	DOI 10.1109/IPDPS.2017.76.
//
// SpMSpV computes y ← A·x where the matrix A, the input vector x and
// the output vector y are all sparse. It is the workhorse of
// frontier-based graph algorithms (BFS, connected components, maximal
// independent set, data-driven PageRank, shortest paths) and a core
// primitive of the GraphBLAS standard: the current frontier is x, the
// graph is A, and the next frontier is y.
//
// The library's default engine is the paper's SpMSpV-bucket algorithm:
// a vector-driven, synchronization-avoiding three-step scheme (bucket →
// merge → concatenate, with a lock-free counting pre-pass) whose total
// work is O(df) — proportional to the arithmetic actually required —
// independent of the thread count. The competing algorithms the paper
// evaluates (CombBLAS-SPA, CombBLAS-heap, GraphMat's matrix-driven
// scheme, and the GPU-style sort-based scheme) are faithfully
// reimplemented and selectable, and the §V direction-switch extension
// is a first-class Hybrid engine that picks a side per call on input
// density, with a threshold calibrated from probe multiplies at
// construction (Options.HybridThreshold pins it instead).
//
// # Quick start
//
//	t := spmspv.NewTriples(4, 4, 4)
//	t.Append(1, 0, 2.0) // A(1,0) = 2
//	t.Append(2, 1, 3.0)
//	a, _ := spmspv.NewMatrix(t)
//
//	x := spmspv.NewVector(4, 1)
//	x.Append(0, 10) // x(0) = 10
//
//	mu, _ := spmspv.NewMultiplier(a)
//	yf := mu.NewOutputFrontier()
//	mu.Mult(spmspv.NewFrontier(x), yf, spmspv.Arithmetic, spmspv.Desc{})
//	// yf.List() has y(1) = 20
//
// Multiplication is semiring-generic: pass Arithmetic for numerics,
// MinPlus for shortest paths, MinSelect2nd for BFS parents, BoolOrAnd
// for reachability — or name one in Desc.Semiring, the wire form.
//
// # One multiply: Mult and the descriptor
//
// Mult(x, y, sr, d) is the single multiply entry point, parameterized
// by a GraphBLAS-style descriptor (the CombBLAS shape: one primitive,
// capabilities as parameters) instead of one method per capability.
// The JSON-serializable Desc carries the mask and its polarity, the
// accumulate switch, the transpose (§II-A left multiplication), the
// requested output representation, the batch width and the semiring
// name; MultBatch is the same call over a batch with per-slot masks.
// The legacy Multiply* methods remain as thin deprecated wrappers:
//
//	Multiply(x, sr) / MultiplyInto(x, y, sr)   →  Mult(xf, yf, sr, Desc{})
//	MultiplyMasked(x, y, sr, mask, comp)       →  Mult(xf, yf, sr, Desc{Mask: mask, Complement: comp})
//	MultiplyFrontier(xf, yf, sr)               →  Mult(xf, yf, sr, Desc{})
//	MultiplyFrontierMasked(xf, yf, sr, m, c)   →  Mult(xf, yf, sr, Desc{Mask: m, Complement: c})
//	MultiplyFrontierInto(xf, y, sr)            →  Mult(xf, yf, sr, Desc{Output: OutputList})
//	MultiplyLeft(x, sr)                        →  Mult(xf, yf, sr, Desc{Transpose: true})
//	MultiplyAccum/MultiplyAccumInto            →  Mult(xf, yf, sr, Desc{Accum: true}) (yf's prior contents accumulate)
//	MultiplyBatch(xs, ys, sr)                  →  MultBatch(xfs, yfs, sr, Desc{})
//	MultiplyBatchInto (ROADMAP item)           →  MultBatch(xfs, yfs, sr, Desc{}) — slot bitmaps now emitted natively
//
// Capability negotiation is compiled, not repeated: the Multiplier
// caches one execution plan per descriptor shape (mask? accum? output
// representation?), resolving the optional engine interfaces once, so
// steady-state Mult calls perform no type assertions — within noise of
// the specialized legacy methods. Request/Response wrap a whole call
// as JSON (Multiplier.Do executes one) — the wire contract the serving
// layer speaks.
//
// # Serving: Store, Server, Program, Client
//
// The serving layer turns the in-process engine into a network
// service, in four pieces that stack on the wire contract:
//
//	Client ──HTTP──> Server (/v1/mult, /v1/program, /v1/programs/{name},
//	   \    JSON or     |    /v1/matrices, /v1/shards, /v1/health)
//	    \   binary      |    Accept/Content-Type negotiation,
//	     \  wire        |    request coalescing → MultBatch
//	      \             v
//	       +──same──> Store ──or── ShardedStore   row-split scatter/gather
//	        Executor    |  \         |            coordinator; with
//	        interface   |   \        |            WithReplication(R):
//	                    |    \       v
//	                    |     \   band 0: [replica 0 | replica 1 | …]
//	                    |      \  band 1: [replica 0 | replica 1 | …]
//	                    |       \    |    (each replica a Store/Client)
//	                    |        \   v
//	                    |     internal/cluster.Membership
//	                    |         alive → suspect → dead per member,
//	                    |         epoch-versioned Views, /v1/health probes;
//	                    |         reads pick the preferred alive replica
//	                    |         and fail over IN-ROUND on death
//	                    |
//	                    |   programRegistry       named stored procedures,
//	                    v    (internal/dataflow)  compiled once at PUT
//	                Multiplier.Do / Mult / MultBatch
//
// A Store (NewStore) is the registry of named matrices: Put/PutFile
// register, Load lazily builds and caches ONE shared Multiplier per
// matrix — legal because of the concurrency contract below — so every
// request reuses its compiled plans and calibrated hybrid threshold,
// and a warm store answers repeat traffic with zero plan compilations.
// Matrices travel in three encodings (Matrix Market, a JSON wire form,
// a compact binary form), sniffed by one decoder, so they can be
// uploaded, not just preloaded from disk.
//
// A Server (NewServer) mounts the store over HTTP. Concurrent
// single-vector requests against the same matrix coalesce into one
// MultBatch through a bounded batching window (WithBatchWindow /
// WithBatchSize), amortizing per-call engine setup across callers that
// never see each other. A Program is the dataflow wire form: ops whose
// inputs reference earlier ops' outputs ("$0"-style), with scalar
// registers (reduce/scale/axpy/prune) and bounded loops whose carries
// ("^i") thread values across iterations and whose until_empty /
// until_below exits encode convergence — so a whole BFS (BFSProgram,
// two ops at any depth) or a converging PageRank (PageRankProgram)
// runs server-side in one round trip, interpreted by
// internal/dataflow. Programs can also be registered as named stored
// procedures (PUT /v1/programs/{name}): compiled once at registration,
// invoked by name with only seed vectors and scalar bindings on the
// wire (POST .../invoke), with per-program serving counters on GET
// /v1/programs — warm invoke traffic compiles nothing and ships less
// than resending the op list. A Client implements the same Do/Run surface as the
// Store (the Executor interface), so algorithm code is
// transport-agnostic, and failures carry structured wire errors
// (Response.Err: code + message) either way. cmd/spmspv-serve wires it
// all together with -preload, graceful shutdown and per-matrix
// request/latency counters.
//
// A ShardedStore (NewShardedStore / NewLocalShardedStore) is the
// horizontal version of a Store: the paper's 1D row-split — already
// the intra-process work division — promoted to the unit of
// distribution. Put splits a matrix into N contiguous row bands
// (RowSlice over PieceBounds) and uploads one band per shard backend
// (in-process Stores or remote spmspv-serve workers via Client); every
// Do/Run scatters in parallel — shard w computes its rows of y against
// the full x — and gathers by concatenation, which is exact because
// row bands are disjoint (transpose is rejected: row pieces of A are
// column pieces of Aᵀ, whose partial products would need a semiring
// merge). Failed shard calls retry with exponential backoff
// (WithShardRetries / WithShardTimeout), so a shard dying mid-program
// degrades to a retried round; per-shard counters surface on
// ShardStats and GET /v1/shards. The coordinator satisfies the same
// ServingStore surface as a Store, so NewServer, coalescing, both wire
// forms and the Client work unchanged — spmspv-serve's -shards flag
// serves a coordinator, -shard-of i/n a worker holding one preloaded
// row slice that coordinators discover lazily.
//
// WithReplication(R) (or NewReplicatedShardedStore for explicit
// groups) keeps R full copies of every row band behind a
// health-checked membership subsystem (internal/cluster): each member
// walks alive → suspect → dead on consecutive failures — reported
// passively by every serving-path call and actively by a GET
// /v1/health probe loop (WithProbeInterval) — any success restores it
// to alive, and the epoch-versioned View advances only on state
// transitions. Put fans each band's piece to all of its replicas (a
// partial failure rolls back the copies that landed); reads take one
// consistent View per scatter, send each band to its preferred alive
// replica, and on a retryable failure fail over to the next replica
// WITHIN the same dispatch round — a replica dying mid-BFS costs a
// failover counter tick, zero retry rounds, and a bit-identical
// result. Only a fully dead group falls back to the bounded
// retry/backoff loop. Per-replica state, failovers, probe failures
// and the membership epoch ride on ShardStats, GET /v1/shards and the
// shutdown log; /v1/health answers on every server (JSON or the SPHL
// binary frame) with engine, registry sizes and — on a coordinator —
// the fleet shape.
//
// Both request endpoints speak two wire forms, negotiated per request:
// JSON (the default for clients that express no preference) and a
// binary envelope (ContentTypeBinary) that keeps the structured header
// as JSON but ships every vector as a framed SPVB section — raw
// little-endian arrays, bitmap outputs as raw uint64 words — removing
// the per-request float-formatting tax that dominated JSON serving.
// The server sniffs request bodies and honors Accept; the Client
// negotiates binary by default with a sticky JSON fallback for old
// servers; cmd/spmspv-serve's -wire flag sets the server default.
// DecodeVector sniffs SPVB vs JSON vs text, mirroring DecodeMatrix.
//
// # Architecture: the engine layer
//
// Every algorithm implements internal/engine.Engine — Multiply over a
// semiring plus deterministic work counters — and registers a
// constructor with the internal/engine registry from init (the
// database/sql driver pattern), together with its short CLI aliases
// (ParseAlgorithm and EngineNames both derive from the registry). The
// public facade, the graph algorithms, the benchmark harness and the
// commands all construct engines exclusively through that registry;
// NewMultiplier(a, opts...) is the constructor — functional options,
// an error (not a silent Bucket fallback) for unregistered algorithms
// — and Algorithms lists what is registered.
//
// # Concurrency contract
//
// A Multiplier (and every registry-constructed engine) is safe for
// concurrent Multiply / MultiplyInto / MultiplyMasked / MultiplyLeft /
// MultiplyAccumInto calls from any number of goroutines. Per-call
// scratch state (the bucket workspace of §III-A, the baselines'
// row-split SPAs, heaps and bitvectors) lives in a fixed array of
// slot-pinned workspaces (internal/par.Slots): a caller claims the
// lowest free slot, so a single iterative caller reuses slot 0's warm
// workspace every call — the paper's preallocate-once behavior — and
// up to GOMAXPROCS concurrent callers each hold a stable, cache-warm
// slot. Callers beyond that spill to a sync.Pool fallback (slot -1),
// so oversubscription degrades to pooled allocation instead of
// blocking. Work counters are folded into one aggregate under a lock
// when each call retires, and the transpose engine behind MultiplyLeft
// is built exactly once. Parallelism also exists inside each call
// (Options.Threads), so throughput can be scaled either way.
//
// # Scheduler: the persistent work-stealing executor
//
// All intra-call parallelism runs on one process-wide pool of
// long-lived workers (internal/par), sized GOMAXPROCS-1 so the
// calling goroutine always participates as worker 0; SetExecutorWorkers
// (or spmspv-serve's -par-workers flag) resizes it at startup, and
// n <= 0 forces every parallel region inline. A fork-join Run hands
// each worker a bounded work-stealing deque of task ranges: a worker
// drains its own deque front-to-back and steals from the back of a
// victim's when empty, so the engines can over-decompose (about 8
// chunks per worker) and irregular degree distributions rebalance
// without per-call goroutine spawns. At Threads <= 1, or when the pool
// is empty, dispatch is a plain inline loop with zero scheduling
// overhead.
//
// Worker ids are job-local and dense (0..p-1, stable for the duration
// of one Run barrier), so per-job state may be indexed by worker id —
// but ids are NOT stable across jobs; state that must survive a call
// is pinned by slot through par.Slots instead. Chunk identity, never
// the executing worker, determines where an output entry lands, so
// results are bit-identical across the static, dynamic and stealing
// schedules (Options.MergeSched / the facade's SchedStatic,
// SchedDynamic, SchedStealing) and across runs. Counters therefore
// split into deterministic work counters (unchanged at a fixed thread
// count) and scheduling observability — ChunkClaims, Steals, IdleNs —
// which "go test"-style variance is allowed to move;
// "spmspv-bench -experiment scaling" sweeps all three schedules and
// reports ns/op, claims, steals and per-thread idle time.
//
// # Frontier representations
//
// A sparse vector reaches engines in one of the two §II-C
// representations: the (index, value) list the vector-driven
// algorithms scan, or the O(n) bitmap GraphMat's matrix-driven loop
// probes. A Frontier (NewFrontier) carries both, materializing the
// bitmap lazily at most once and sharing it across consumers; feed it
// through Multiplier.MultiplyFrontierInto and a bitmap-preferring
// engine (GraphMat, the Hybrid engine's matrix-driven calls) skips its
// per-call list→bitmap conversion whenever an earlier consumer already
// paid for it. Conversions are pooled and counted
// (Counters.FrontierConversions).
//
// # Output frontiers and masked pipelines
//
// Outputs are symmetric with inputs: Multiplier.MultiplyFrontier (and
// the masked MultiplyFrontierMasked) write the result into an output
// Frontier —
//
//	input Frontier ──> engine ──> output Frontier ──> next input ...
//
// Engines with native output support (Bucket, GraphMat, Hybrid) emit
// the bitmap representation in the same pass that writes the list.
// BFS, BFSMasked, MultiBFS and ConnectedComponents all run as such
// pipelines; BFSMasked is the conversion-free one — its masked
// product needs no filtering, so each output frontier survives intact
// and a direction-optimized Hybrid engine probes natively-emitted
// bitmaps on every dense level with zero list→bitmap conversions
// (Counters.OutputConversions and FrontierOutputStats prove it). The
// filtering pipelines (plain BFS, components) take the list-only path
// instead, since their refine step would erase a native bitmap before
// anything read it. Engines that only speak lists are wrapped
// transparently; their output bitmap stays lazy. Every registered
// engine also implements the masked extension (the §V output-mask
// pushdown), so BFSMasked compares all six engines.
//
// # Batched multiplies and multi-source BFS
//
// Multiplier.MultBatch multiplies a batch of frontiers in one pass.
// The bucket engine shares its Estimate/bucket-sizing pass, workspace
// checkout and merge scheduling across the batch — the per-frontier
// marginal cost approaches the pure O(df) work term, which is what the
// sparse ramp-up levels of a multi-source BFS are dominated by — while
// engines without a native batch path run an equivalent loop; results
// are always exactly those of the loop. The batched Step 3 emits every
// slot's output bitmap natively (and per-slot masks push into the
// batched merge), so MultiBFSMasked — one masked BFS per source, all
// expanded through one batched call per level — is conversion-free
// end to end, exactly like single-source BFSMasked. MultiBFS runs the
// plain (refining) variant.
//
// # Semiring op specialization
//
// Semiring operations carry enum tags (semiring.AddOp / semiring.MulOp)
// beside the func fields. The bucket engine's hot loops — Step 1
// scatter and Step 2 SPA merge, where Add/Mul run once per matrix
// nonzero touched — dispatch once per call on those tags to loops with
// the operation inlined, and the CombBLAS-SPA / GraphMat accumulate
// loops dispatch once per column to shared monomorphized SPA kernels,
// so all seven predefined semirings run with no per-nonzero
// function-pointer calls (~20-25% faster multiplies). User-defined
// semirings leave the tags AddCustom/MulCustom and take the
// func-valued loops, exactly the cost every semiring paid before.
//
// See README.md for the architecture tour and EXPERIMENTS.md for the
// reproduction of every table and figure in the paper's evaluation
// plus the hybrid-threshold and batch-size sweeps.
package spmspv
