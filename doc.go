// Package spmspv is a work-efficient parallel sparse matrix–sparse
// vector multiplication (SpMSpV) library — a from-scratch Go
// reproduction of:
//
//	A. Azad and A. Buluç, "A work-efficient parallel sparse
//	matrix-sparse vector multiplication algorithm", IPDPS 2017.
//	DOI 10.1109/IPDPS.2017.76.
//
// SpMSpV computes y ← A·x where the matrix A, the input vector x and
// the output vector y are all sparse. It is the workhorse of
// frontier-based graph algorithms (BFS, connected components, maximal
// independent set, data-driven PageRank, shortest paths) and a core
// primitive of the GraphBLAS standard: the current frontier is x, the
// graph is A, and the next frontier is y.
//
// The library's default engine is the paper's SpMSpV-bucket algorithm:
// a vector-driven, synchronization-avoiding three-step scheme (bucket →
// merge → concatenate, with a lock-free counting pre-pass) whose total
// work is O(df) — proportional to the arithmetic actually required —
// independent of the thread count. The competing algorithms the paper
// evaluates (CombBLAS-SPA, CombBLAS-heap, GraphMat's matrix-driven
// scheme, and the GPU-style sort-based scheme) are faithfully
// reimplemented and selectable, both for benchmarking and because they
// win in corner regimes (matrix-driven for near-dense inputs).
//
// # Quick start
//
//	t := spmspv.NewTriples(4, 4, 4)
//	t.Append(1, 0, 2.0) // A(1,0) = 2
//	t.Append(2, 1, 3.0)
//	a, _ := spmspv.NewMatrix(t)
//
//	x := spmspv.NewVector(4, 1)
//	x.Append(0, 10) // x(0) = 10
//
//	mu := spmspv.New(a, spmspv.Options{})
//	y := mu.Multiply(x, spmspv.Arithmetic) // y(1) = 20
//
// Multiplication is semiring-generic: pass Arithmetic for numerics,
// MinPlus for shortest paths, MinSelect2nd for BFS parents, BoolOrAnd
// for reachability.
//
// # Architecture: the engine layer
//
// Every algorithm implements internal/engine.Engine — Multiply over a
// semiring plus deterministic work counters — and registers a
// constructor with the internal/engine registry from init (the
// database/sql driver pattern). The public facade, the graph
// algorithms, the benchmark harness and the commands all construct
// engines exclusively through that registry; NewWithAlgorithm is a thin
// wrapper over it, and Algorithms lists what is registered.
//
// # Concurrency contract
//
// A Multiplier (and every registry-constructed engine) is safe for
// concurrent Multiply / MultiplyInto / MultiplyMasked / MultiplyLeft /
// MultiplyAccumInto calls from any number of goroutines. Per-call
// scratch state (the bucket workspace of §III-A, the baselines'
// row-split SPAs, heaps and bitvectors) is borrowed from a sync.Pool
// per call, so a single iterative caller keeps the paper's
// preallocate-once behavior while N concurrent callers transiently hold
// N pooled workspaces; work counters are folded into one aggregate
// under a lock when each call retires, and the transpose engine behind
// MultiplyLeft is built exactly once. Parallelism also exists inside
// each call (Options.Threads), so throughput can be scaled either way.
//
// # Semiring op specialization
//
// Semiring operations carry enum tags (semiring.AddOp / semiring.MulOp)
// beside the func fields. The bucket engine's hot loops — Step 1
// scatter and Step 2 SPA merge, where Add/Mul run once per matrix
// nonzero touched — dispatch once per call on those tags to loops with
// the operation inlined, so all seven predefined semirings run with no
// per-nonzero function-pointer calls (~20-25% faster multiplies).
// User-defined semirings leave the tags AddCustom/MulCustom and take
// the func-valued loops, exactly the cost every semiring paid before.
//
// See README.md for the architecture tour, DESIGN.md for the system
// inventory and EXPERIMENTS.md for the reproduction of every table and
// figure in the paper's evaluation.
package spmspv
