package spmspv_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	spmspv "spmspv"
)

// TestHealthEndpoint drives GET /v1/health over both wire forms and
// both backend kinds: a plain store answers its engine and registry
// sizes, a coordinator adds its fleet shape, and the binary form rides
// the SPHL frame under Accept negotiation.
func TestHealthEndpoint(t *testing.T) {
	opts := []spmspv.Option{spmspv.WithEngineOptions(engineOptions(1))}
	st := spmspv.NewStore(opts...)
	if err := st.Put("g", smallMatrix(t)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(spmspv.NewServer(st))
	defer srv.Close()

	// JSON form through the client — the membership layer's probe call.
	c := spmspv.NewClient(srv.URL)
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Engine != spmspv.Bucket.String() || h.Matrices != 1 || h.Shards != 0 {
		t.Fatalf("store health: %+v", h)
	}
	if h.UptimeNS <= 0 {
		t.Fatalf("health reports no uptime: %+v", h)
	}

	// Binary form: Accept the SPHL frame explicitly.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/health", nil)
	req.Header.Set("Accept", spmspv.ContentTypeBinary)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != spmspv.ContentTypeBinary {
		t.Fatalf("binary health Content-Type %q", ct)
	}
	hb, err := spmspv.DecodeHealthBinary(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if hb.Status != "ok" || hb.Engine != spmspv.Bucket.String() || hb.Matrices != 1 {
		t.Fatalf("binary health: %+v", hb)
	}

	// Coordinator: fleet shape and membership epoch ride along.
	ss, err := spmspv.NewLocalShardedStore(2, opts, spmspv.WithReplication(2))
	if err != nil {
		t.Fatal(err)
	}
	csrv := httptest.NewServer(spmspv.NewServer(ss))
	defer csrv.Close()
	ch, err := spmspv.NewClient(csrv.URL).Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ch.Engine != "coordinator" || ch.Shards != 2 || ch.Replicas != 2 {
		t.Fatalf("coordinator health: %+v", ch)
	}
}

// TestHealthBinaryCodec pins the SPHL frame: lossless roundtrip,
// and loud rejection of wrong magic and unsupported versions.
func TestHealthBinaryCodec(t *testing.T) {
	in := &spmspv.HealthStatus{
		Status: "ok", Engine: "coordinator", Matrices: 3, Programs: 2,
		UptimeNS: 12345, Shards: 4, Replicas: 2, MemberEpoch: 9,
	}
	var buf bytes.Buffer
	if err := spmspv.EncodeHealthBinary(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := spmspv.DecodeHealthBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if *out != *in {
		t.Fatalf("roundtrip: %+v, want %+v", out, in)
	}

	if _, err := spmspv.DecodeHealthBinary(bytes.NewReader([]byte("SPRQ\x01\x00\x00\x00\x00\x00\x00\x00"))); err == nil {
		t.Fatal("wrong magic accepted")
	}
	if _, err := spmspv.DecodeHealthBinary(bytes.NewReader([]byte("SPHL\x63\x00\x00\x00\x00\x00\x00\x00"))); err == nil {
		t.Fatal("future version accepted")
	}
}

// smallMatrix builds a tiny fixed matrix for registry-shape tests.
func smallMatrix(t *testing.T) *spmspv.Matrix {
	t.Helper()
	tr := spmspv.NewTriples(4, 4, 4)
	for i := 0; i < 4; i++ {
		tr.Append(spmspv.Index(i), spmspv.Index((i+1)%4), 1)
	}
	a, err := spmspv.NewMatrix(tr)
	if err != nil {
		t.Fatal(err)
	}
	return a
}
