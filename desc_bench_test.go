// Benchmarks pinning the redesign's perf acceptance: Mult with an
// empty (or list-output) Desc must be within noise of the specialized
// legacy methods it replaces — the plan cache moves capability
// negotiation off the hot path, so the descriptor indirection costs
// one map load per call (or nothing, holding the Plan).
package spmspv_test

import (
	"testing"

	spmspv "spmspv"
)

func benchSetup(b *testing.B) (*spmspv.Multiplier, *spmspv.Vector, *spmspv.BitVector) {
	b.Helper()
	a := spmspv.RMAT(spmspv.DefaultRMAT(13), 7)
	mu, err := spmspv.NewMultiplier(a, spmspv.WithSortOutput(true))
	if err != nil {
		b.Fatal(err)
	}
	x := spmspv.NewVector(a.NumCols, 0)
	for i := spmspv.Index(0); i < a.NumCols; i += 16 {
		x.Append(i, float64(i))
	}
	mask := spmspv.NewBitVector(a.NumRows)
	sel := spmspv.NewVector(a.NumRows, 0)
	for i := spmspv.Index(0); i < a.NumRows; i += 2 {
		sel.Append(i, 1)
	}
	mask.SetFrom(sel)
	return mu, x, mask
}

// BenchmarkMultVsLegacy compares the descriptor-driven entry point
// against each legacy specialized method computing the same thing.
func BenchmarkMultVsLegacy(b *testing.B) {
	mu, x, mask := benchSetup(b)
	n := x.N

	b.Run("legacy/MultiplyInto", func(b *testing.B) {
		y := spmspv.NewVector(0, 0)
		for i := 0; i < b.N; i++ {
			mu.MultiplyInto(x, y, spmspv.MinSelect2nd)
		}
	})
	b.Run("Mult/list", func(b *testing.B) {
		xf, yf := spmspv.NewFrontier(x), spmspv.NewOutputFrontier(n)
		d := spmspv.Desc{Output: spmspv.OutputList}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mu.Mult(xf, yf, spmspv.MinSelect2nd, d)
		}
	})
	b.Run("legacy/MultiplyFrontier", func(b *testing.B) {
		xf, yf := spmspv.NewFrontier(x), spmspv.NewOutputFrontier(n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mu.MultiplyFrontier(xf, yf, spmspv.MinSelect2nd)
		}
	})
	b.Run("Mult/auto", func(b *testing.B) {
		xf, yf := spmspv.NewFrontier(x), spmspv.NewOutputFrontier(n)
		d := spmspv.Desc{}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mu.Mult(xf, yf, spmspv.MinSelect2nd, d)
		}
	})
	b.Run("legacy/MultiplyMasked", func(b *testing.B) {
		y := spmspv.NewVector(0, 0)
		for i := 0; i < b.N; i++ {
			mu.MultiplyMasked(x, y, spmspv.MinSelect2nd, mask, true)
		}
	})
	b.Run("Mult/masked", func(b *testing.B) {
		xf, yf := spmspv.NewFrontier(x), spmspv.NewOutputFrontier(n)
		d := spmspv.Desc{Mask: mask, Complement: true, Output: spmspv.OutputList}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mu.Mult(xf, yf, spmspv.MinSelect2nd, d)
		}
	})
	b.Run("Plan/list", func(b *testing.B) {
		// Holding the compiled plan removes even the per-call shape map
		// load — the loop form internal/algorithms uses.
		xf, yf := spmspv.NewFrontier(x), spmspv.NewOutputFrontier(n)
		d := spmspv.Desc{Output: spmspv.OutputList}
		plan := mu.Plan(d)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			plan.Mult(xf, yf, spmspv.MinSelect2nd, d)
		}
	})
}
