package spmspv_test

import (
	"bytes"
	"fmt"
	"testing"

	spmspv "spmspv"
	"spmspv/internal/graphgen"
	"spmspv/internal/sparse"
)

// TestIntegrationAllEnginesAllGraphsAllAlgorithms is the cross-module
// integration matrix: every SpMSpV engine drives every graph algorithm
// on every Table IV stand-in class at small scale, and structural
// invariants are checked on each result. This is the test that fails if
// any engine/algorithm/format combination disagrees.
func TestIntegrationAllEnginesAllGraphsAllAlgorithms(t *testing.T) {
	if testing.Short() {
		t.Skip("integration matrix is slow")
	}
	const scale = 8
	graphs := map[string]*spmspv.Matrix{}
	for _, name := range []string{"rmat-ljournal", "grid5-g3circuit", "trimesh-delaunay", "rgg"} {
		p, ok := graphgen.FindProblem(name)
		if !ok {
			t.Fatalf("problem %s missing", name)
		}
		graphs[name] = p.Build(scale)
	}
	algos := []spmspv.Algorithm{
		spmspv.Bucket, spmspv.CombBLASSPA, spmspv.CombBLASHeap,
		spmspv.GraphMat, spmspv.SortBased,
	}

	for gname, g := range graphs {
		// Reference structure from the sequential BFS oracle.
		wantLevels, _, _ := sparse.BFSLevels(g, 0)
		reachable := 0
		for _, l := range wantLevels {
			if l >= 0 {
				reachable++
			}
		}
		for _, alg := range algos {
			name := fmt.Sprintf("%s/%s", gname, alg)
			mu := spmspv.NewWithAlgorithm(g, alg, spmspv.Options{Threads: 3, SortOutput: true})

			// BFS levels must match the oracle exactly.
			res := spmspv.BFS(mu, 0)
			for v := range wantLevels {
				if res.Levels[v] != wantLevels[v] {
					t.Fatalf("%s: BFS level mismatch at %d", name, v)
				}
			}

			// Connected components: the reachable set from 0 must share
			// one label (these graphs are undirected).
			labels := spmspv.ConnectedComponents(mu)
			for v, l := range wantLevels {
				if l >= 0 && labels[v] != labels[0] {
					t.Fatalf("%s: vertex %d reachable but in another component", name, v)
				}
			}

			// SSSP over unit weights must equal BFS levels.
			dist := spmspv.SSSP(mu, 0)
			for v, l := range wantLevels {
				if l >= 0 && dist[v] != float64(l) {
					t.Fatalf("%s: unit-weight SSSP %g != BFS level %d at vertex %d",
						name, dist[v], l, v)
				}
			}

			// PageRank sums to 1.
			pr := spmspv.PageRank(
				spmspv.NewWithAlgorithm(spmspv.NormalizeColumns(g), alg,
					spmspv.Options{Threads: 3, SortOutput: true}),
				spmspv.PageRankOptions{})
			var sum float64
			for _, r := range pr.Ranks {
				sum += r
			}
			if sum < 0.999999 || sum > 1.000001 {
				t.Fatalf("%s: PageRank sums to %g", name, sum)
			}
		}

		// MIS once per graph with the default engine (engine-independent
		// given the same random seed would require identical iteration
		// order, so validity rather than equality is the invariant).
		mu := spmspv.New(g, spmspv.Options{Threads: 3, SortOutput: true})
		inSet := spmspv.MaximalIndependentSet(mu, 123)
		simple := spmspv.StripSelfLoops(g)
		for v := spmspv.Index(0); v < simple.NumCols; v++ {
			rows, _ := simple.Col(v)
			if inSet[v] {
				for _, u := range rows {
					if u != v && inSet[u] {
						t.Fatalf("%s: MIS not independent", gname)
					}
				}
			}
		}
	}
}

// TestIntegrationMatrixMarketPipeline round-trips a generated graph
// through the Matrix Market format and verifies multiplication results
// survive serialization.
func TestIntegrationMatrixMarketPipeline(t *testing.T) {
	p, _ := graphgen.FindProblem("trimesh-hugetric")
	g := p.Build(8)
	x := spmspv.NewVector(g.NumCols, 3)
	x.Append(0, 1)
	x.Append(g.NumCols/2, 2)
	x.Append(g.NumCols-1, 3)

	before := spmspv.New(g, spmspv.Options{SortOutput: true}).Multiply(x, spmspv.Arithmetic)

	var buf bytes.Buffer
	if err := spmspv.WriteMatrixMarket(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := spmspv.ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	after := spmspv.New(back, spmspv.Options{SortOutput: true}).Multiply(x, spmspv.Arithmetic)
	if !after.EqualValues(before, 0) {
		t.Error("multiplication result changed across Matrix Market round trip")
	}
}
