module spmspv

go 1.24
