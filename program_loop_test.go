// Tests for the dataflow subsystem: scalar ops (scale/axpy/
// ewise_mult/reduce/prune), the bounded loop construct with
// until_empty/until_below exits, the loop-based BFS against its
// unrolled oracle, server-side PageRank bit-identity against the
// in-process iteration, and the stored-procedure registry with its
// zero-recompile contract.
package spmspv_test

import (
	"math"
	"math/rand"
	"testing"

	spmspv "spmspv"
	"spmspv/internal/dataflow"
	"spmspv/internal/engine"
	"spmspv/internal/testutil"
)

func fptr(v float64) *float64 { return &v }

// TestProgramScalarOps pins the semantics of each scalar op through
// Store.Run against hand-computed expectations.
func TestProgramScalarOps(t *testing.T) {
	st := spmspv.NewStore(spmspv.WithEngineOptions(engineOptions(2)))
	x := testutil.VectorWithIndices(10, 1, 3, 5) // values 1 at 1,3,5
	x.Val[0], x.Val[1], x.Val[2] = 2, -3, 4
	z := testutil.VectorWithIndices(10, 3, 5, 7)
	z.Val[0], z.Val[1], z.Val[2] = 10, 20, 30

	resp, err := st.Run(&spmspv.Program{Ops: []spmspv.ProgramOp{
		{Op: "input", X: x}, // $0
		{Op: "input", X: z}, // $1
		{Op: "scale", XRef: "$0", Alpha: fptr(2), Emit: true},             // $2: 2x
		{Op: "axpy", XRef: "$0", YRef: "$1", Alpha: fptr(-1), Emit: true}, // $3: -x+z
		{Op: "ewise_mult", XRef: "$0", YRef: "$1", Emit: true},            // $4: x.*z
		{Op: "reduce", Reduce: "sum", XRef: "$0", Emit: true},             // $5: 3
		{Op: "reduce", Reduce: "max", XRef: "$0", Emit: true},             // $6: 4
		{Op: "reduce", Reduce: "nnz", XRef: "$0", Emit: true},             // $7: 3
		{Op: "prune", XRef: "$0", Alpha: fptr(2.5), Emit: true},           // $8: |v|>2.5
		{Op: "scale", XRef: "$0", AlphaRef: "$6", Emit: true},             // $9: max(x)·x
	}}, // scale mutates a clone: $0 must still be 2,-3,4 when $9 runs
	)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Steps != 10 {
		t.Fatalf("Steps = %d, want 10", resp.Steps)
	}
	byOp := map[int]spmspv.ProgramResult{}
	for _, r := range resp.Results {
		byOp[r.Op] = r
	}
	wantVec := func(op int, ind []spmspv.Index, val []float64) {
		t.Helper()
		y := byOp[op].Y
		if y == nil {
			t.Fatalf("op %d: no vector result", op)
		}
		if len(y.Ind) != len(ind) {
			t.Fatalf("op %d: got %v/%v, want ind %v val %v", op, y.Ind, y.Val, ind, val)
		}
		for k := range ind {
			if y.Ind[k] != ind[k] || y.Val[k] != val[k] {
				t.Fatalf("op %d: got %v/%v, want ind %v val %v", op, y.Ind, y.Val, ind, val)
			}
		}
	}
	wantScalar := func(op int, want float64) {
		t.Helper()
		s := byOp[op].Scalar
		if s == nil {
			t.Fatalf("op %d: no scalar result", op)
		}
		if *s != want {
			t.Fatalf("op %d: scalar = %v, want %v", op, *s, want)
		}
	}
	wantVec(2, []spmspv.Index{1, 3, 5}, []float64{4, -6, 8})
	wantVec(3, []spmspv.Index{1, 3, 5, 7}, []float64{-2, 13, 16, 30})
	wantVec(4, []spmspv.Index{3, 5}, []float64{-30, 80})
	wantScalar(5, 3)
	wantScalar(6, 4)
	wantScalar(7, 3)
	wantVec(8, []spmspv.Index{3, 5}, []float64{-3, 4}) // |2| ≤ 2.5 dropped
	wantVec(9, []spmspv.Index{1, 3, 5}, []float64{8, -12, 16})
}

// TestProgramLoopSemantics pins the loop construct: per-iteration body
// emits, loop-carried updates applying on the final iteration, the
// until_below scalar exit, and max_iters exhaustion.
func TestProgramLoopSemantics(t *testing.T) {
	st := spmspv.NewStore(spmspv.WithEngineOptions(engineOptions(2)))
	x := testutil.VectorWithIndices(4, 0, 2)
	x.Val[0], x.Val[1] = 8, 4

	// Halve until max < 1: iterations produce max 4, 2, 1, 0.5 → exits
	// after iteration 4 (the first whose max is below the threshold).
	halving := func(maxIters int, threshold float64) *spmspv.Program {
		return &spmspv.Program{Ops: []spmspv.ProgramOp{
			{Op: "input", X: x},
			{
				Op:         "loop",
				Emit:       true,
				Carry:      []string{"$0"},
				MaxIters:   maxIters,
				Update:     []string{"$0"},
				UntilBelow: "$1",
				Threshold:  threshold,
				Body: []spmspv.ProgramOp{
					{Op: "scale", XRef: "^0", Alpha: fptr(0.5)},
					{Op: "reduce", Reduce: "max", XRef: "$0", Emit: true},
				},
			},
		}}
	}

	resp, err := st.Run(halving(100, 1))
	if err != nil {
		t.Fatal(err)
	}
	var maxes []float64
	var finalY *spmspv.Vector
	for _, r := range resp.Results {
		switch {
		case r.Iter > 0:
			if r.Op != 1 || r.BodyOp != 1 || r.Iter != len(maxes)+1 {
				t.Fatalf("unexpected body result %+v", r)
			}
			maxes = append(maxes, *r.Scalar)
		default:
			finalY = r.Y
		}
	}
	want := []float64{4, 2, 1, 0.5}
	if len(maxes) != len(want) {
		t.Fatalf("per-iteration maxes %v, want %v", maxes, want)
	}
	for k := range want {
		if maxes[k] != want[k] {
			t.Fatalf("per-iteration maxes %v, want %v", maxes, want)
		}
	}
	if finalY == nil {
		t.Fatal("loop with emit returned no final value")
	}
	// Final carry: x/16 (the update applied on the exit iteration too).
	if finalY.Val[0] != 0.5 || finalY.Val[1] != 0.25 {
		t.Fatalf("final carry %v/%v, want values [0.5 0.25]", finalY.Ind, finalY.Val)
	}

	// Exhaustion: a threshold no positive max reaches stops the loop at
	// max_iters, without error.
	resp, err = st.Run(halving(3, -1))
	if err != nil {
		t.Fatal(err)
	}
	iters := 0
	for _, r := range resp.Results {
		if r.Iter > 0 {
			iters++
		}
	}
	if iters != 3 {
		t.Fatalf("exhausted loop ran %d iterations, want 3", iters)
	}
}

// TestProgramValidateLoopGrammar pins the extended grammar's
// compile-time rejections: every case must error (and never panic).
func TestProgramValidateLoopGrammar(t *testing.T) {
	x := testutil.VectorWithIndices(10, 3)
	input := spmspv.ProgramOp{Op: "input", X: x}
	loop := func(mut func(*spmspv.ProgramOp)) *spmspv.Program {
		op := spmspv.ProgramOp{
			Op:         "loop",
			Carry:      []string{"$0"},
			MaxIters:   4,
			Update:     []string{"$0"},
			UntilEmpty: "$0",
			Body:       []spmspv.ProgramOp{{Op: "scale", XRef: "^0", Alpha: fptr(0.5)}},
		}
		mut(&op)
		return &spmspv.Program{Ops: []spmspv.ProgramOp{input, op}}
	}
	nested := func(depth int, emitInner bool) *spmspv.Program {
		op := spmspv.ProgramOp{Op: "scale", XRef: "^0", Alpha: fptr(0.5), Emit: emitInner}
		body := []spmspv.ProgramOp{op}
		for d := 0; d < depth; d++ {
			body = []spmspv.ProgramOp{{
				Op: "loop", Carry: []string{"^0"}, MaxIters: 2, Update: []string{"$0"}, Body: body,
			}}
		}
		outer := body[0]
		outer.Carry = []string{"$0"}
		return &spmspv.Program{Ops: []spmspv.ProgramOp{input, outer}}
	}

	cases := map[string]*spmspv.Program{
		"emptyBody":     loop(func(o *spmspv.ProgramOp) { o.Body = nil }),
		"zeroIters":     loop(func(o *spmspv.ProgramOp) { o.MaxIters = 0 }),
		"hugeIters":     loop(func(o *spmspv.ProgramOp) { o.MaxIters = 1 << 21 }),
		"noCarry":       loop(func(o *spmspv.ProgramOp) { o.Carry, o.Update = nil, nil }),
		"carryMismatch": loop(func(o *spmspv.ProgramOp) { o.Update = []string{"$0", "$0"} }),
		"carryForward":  loop(func(o *spmspv.ProgramOp) { o.Carry = []string{"$1"} }),
		"untilEmptyScalar": loop(func(o *spmspv.ProgramOp) {
			o.Body = append(o.Body, spmspv.ProgramOp{Op: "reduce", Reduce: "nnz", XRef: "$0"})
			o.UntilEmpty = "$1"
		}),
		"untilBelowVector": loop(func(o *spmspv.ProgramOp) { o.UntilEmpty = ""; o.UntilBelow = "$0" }),
		"updateScalarForVectorCarry": loop(func(o *spmspv.ProgramOp) {
			o.Body = append(o.Body, spmspv.ProgramOp{Op: "reduce", Reduce: "nnz", XRef: "$0"})
			o.Update = []string{"$1"}
		}),
		"carryOutsideLoop": {Ops: []spmspv.ProgramOp{input, {Op: "indices", XRef: "^0"}}},
		"badCarrySlot":     loop(func(o *spmspv.ProgramOp) { o.Body[0].XRef = "^3" }),
		"tooDeep":          nested(dataflow.MaxLoopDepth+1, false),
		"emitTooDeep":      nested(2, true),
		"inputBothForms":   {Ops: []spmspv.ProgramOp{{Op: "input", X: x, Param: "seed"}}},
		"badParamName":     {Ops: []spmspv.ProgramOp{{Op: "input", Param: "$seed"}}},
		"badReduce":        {Ops: []spmspv.ProgramOp{input, {Op: "reduce", Reduce: "median", XRef: "$0"}}},
		"scaleNoAlpha":     {Ops: []spmspv.ProgramOp{input, {Op: "scale", XRef: "$0"}}},
		"scaleBothAlphas":  {Ops: []spmspv.ProgramOp{input, {Op: "scale", XRef: "$0", Alpha: fptr(1), AlphaRef: "a"}}},
		"alphaRefVector":   {Ops: []spmspv.ProgramOp{input, {Op: "scale", XRef: "$0", AlphaRef: "$0"}}},
		"multScalarInput": {Ops: []spmspv.ProgramOp{
			input,
			{Op: "reduce", Reduce: "sum", XRef: "$0"},
			{XRef: "$1", Desc: spmspv.Desc{Semiring: "arithmetic"}},
		}},
	}
	for name, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}

	// The whole stored-procedure forms compile.
	if err := spmspv.BFSProgram("g", 50, nil).Validate(); err != nil {
		t.Errorf("BFSProgram rejected: %v", err)
	}
	if err := spmspv.PageRankProgram("g", spmspv.PageRankOptions{}, nil).Validate(); err != nil {
		t.Errorf("PageRankProgram rejected: %v", err)
	}
	// Deepest legal nesting compiles.
	if err := nested(dataflow.MaxLoopDepth, false).Validate(); err != nil {
		t.Errorf("depth-%d nesting rejected: %v", dataflow.MaxLoopDepth, err)
	}
}

// TestProgramBFSLoopVsUnrolled runs the loop-based BFS against the
// unrolled oracle AND the in-process algorithm on every engine — the
// loop construct must not change a single parent, level or frontier
// size.
func TestProgramBFSLoopVsUnrolled(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := testutil.RandomCSC(rng, 140, 140, 3)
	for _, alg := range spmspv.Algorithms() {
		st := spmspv.NewStore(spmspv.WithAlgorithm(alg), spmspv.WithEngineOptions(engineOptions(2)))
		if err := st.Put("g", a); err != nil {
			t.Fatal(err)
		}
		mu, err := st.Load("g")
		if err != nil {
			t.Fatal(err)
		}
		want := spmspv.BFS(mu, 0)
		loop, err := spmspv.ProgramBFS(st, "g", a.NumCols, 0, 0)
		if err != nil {
			t.Fatalf("%v: loop BFS: %v", alg, err)
		}
		unrolled, err := spmspv.ProgramBFSUnrolled(st, "g", a.NumCols, 0, 0)
		if err != nil {
			t.Fatalf("%v: unrolled BFS: %v", alg, err)
		}
		compareBFS(t, alg.String()+"/loop", loop, want)
		compareBFS(t, alg.String()+"/unrolled", unrolled, want)

		// The loop program is constant-size; the unrolled one is not.
		if ops := len(spmspv.BFSProgram("g", int(a.NumCols), nil).Ops); ops != 2 {
			t.Fatalf("loop BFS program has %d ops, want 2", ops)
		}
	}
}

// comparePageRank demands bit-identity: the server-side program must
// reproduce the in-process iteration float for float.
func comparePageRank(t *testing.T, label string, got, want *spmspv.PageRankResult) {
	t.Helper()
	if got.Iterations != want.Iterations {
		t.Fatalf("%s: %d iterations, want %d", label, got.Iterations, want.Iterations)
	}
	if len(got.ActiveCounts) != len(want.ActiveCounts) {
		t.Fatalf("%s: active counts %v, want %v", label, got.ActiveCounts, want.ActiveCounts)
	}
	for k := range want.ActiveCounts {
		if got.ActiveCounts[k] != want.ActiveCounts[k] {
			t.Fatalf("%s: active counts %v, want %v", label, got.ActiveCounts, want.ActiveCounts)
		}
	}
	if len(got.Ranks) != len(want.Ranks) {
		t.Fatalf("%s: %d ranks, want %d", label, len(got.Ranks), len(want.Ranks))
	}
	for i := range want.Ranks {
		if math.Float64bits(got.Ranks[i]) != math.Float64bits(want.Ranks[i]) {
			t.Fatalf("%s: rank[%d] = %v, want %v (not bit-identical)", label, i, got.Ranks[i], want.Ranks[i])
		}
	}
}

// TestProgramPageRank runs the server-side PageRank program on every
// engine, unsharded and sharded, against the in-process
// algorithms.PageRank — bit-identical ranks, active counts and
// iteration counts.
func TestProgramPageRank(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := spmspv.NormalizeColumns(testutil.RandomCSC(rng, 90, 90, 4))
	opt := spmspv.PageRankOptions{Tol: 1e-6, MaxIter: 60}
	for _, alg := range spmspv.Algorithms() {
		opts := []spmspv.Option{spmspv.WithAlgorithm(alg), spmspv.WithEngineOptions(engineOptions(2))}
		st := spmspv.NewStore(opts...)
		if err := st.Put("g", a); err != nil {
			t.Fatal(err)
		}
		mu, err := st.Load("g")
		if err != nil {
			t.Fatal(err)
		}
		want := spmspv.PageRank(mu, opt)
		if want.Iterations < 3 {
			t.Fatalf("%v: reference converged in %d iterations; graph too easy", alg, want.Iterations)
		}
		got, err := spmspv.ProgramPageRank(st, "g", a.NumCols, opt)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		comparePageRank(t, alg.String(), got, want)

		ss := newLocalSharded(t, 3, opts...)
		if err := ss.Put("g", a); err != nil {
			t.Fatal(err)
		}
		sharded, err := spmspv.ProgramPageRank(ss, "g", a.NumCols, opt)
		if err != nil {
			t.Fatalf("%v sharded: %v", alg, err)
		}
		comparePageRank(t, alg.String()+"/sharded", sharded, want)
	}
}

// TestStoredProgramRegistry pins the registry lifecycle on the Store:
// put/get/list/delete, invoking by name with seed and scalar bindings,
// and the zero-recompile contract on warm invoke traffic.
func TestStoredProgramRegistry(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := testutil.RandomCSC(rng, 100, 100, 4)
	st := spmspv.NewStore(spmspv.WithEngineOptions(engineOptions(2)))
	if err := st.Put("g", a); err != nil {
		t.Fatal(err)
	}

	if _, err := st.PutProgram("bfs", spmspv.BFSProgram("g", int(a.NumCols), nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.PutProgram("bad/name", spmspv.BFSProgram("g", 4, nil)); err == nil {
		t.Error("slash-named program registered")
	}
	if _, err := st.PutProgram("broken", &spmspv.Program{}); err == nil {
		t.Error("invalid program registered")
	}
	got, err := st.GetProgram("bfs")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ops) != 2 || got.Matrix != "g" {
		t.Fatalf("stored program came back as %d ops on %q", len(got.Ops), got.Matrix)
	}
	if _, err := st.Invoke("nope", nil); spmspv.AsWireError(err).Code != spmspv.CodeUnknownProgram {
		t.Fatalf("unknown program: %v", err)
	}

	// Invoke by name: only the seed rides; results decode identically
	// to the one-shot program path.
	mu, err := st.Load("g")
	if err != nil {
		t.Fatal(err)
	}
	want := spmspv.BFS(mu, 3)
	seed := spmspv.NewVector(a.NumCols, 1)
	seed.Append(3, 3)
	invoke := func() *spmspv.BFSResult {
		t.Helper()
		resp, err := st.Invoke("bfs", &spmspv.InvokeRequest{Args: map[string]*spmspv.Vector{"seed": seed}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := spmspv.DecodeBFSProgramResponse(resp, a.NumCols, 3, int(a.NumCols))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	compareBFS(t, "invoke", invoke(), want)

	// A missing binding is an invoke-time error, not a panic.
	if _, err := st.Invoke("bfs", nil); err == nil {
		t.Error("invoke without the seed binding succeeded")
	}

	// Warm invokes recompile nothing: neither engine plans nor
	// programs.
	plansBefore, progsBefore := engine.PlanCompilations(), dataflow.Compilations()
	for i := 0; i < 5; i++ {
		compareBFS(t, "warm invoke", invoke(), want)
	}
	if d := engine.PlanCompilations() - plansBefore; d != 0 {
		t.Errorf("warm invokes compiled %d engine plans, want 0", d)
	}
	if d := dataflow.Compilations() - progsBefore; d != 0 {
		t.Errorf("warm invokes compiled %d programs, want 0", d)
	}

	// Per-program counters observed every invoke.
	stats := st.Programs()
	if len(stats) != 1 || stats[0].Name != "bfs" {
		t.Fatalf("Programs() = %+v, want one entry 'bfs'", stats)
	}
	if stats[0].Serve.Requests != 7 { // 6 good + the missing-binding invoke
		t.Errorf("program served %d invokes, want 7", stats[0].Serve.Requests)
	}
	if stats[0].Serve.Failures != 1 { // unknown-name invoke hit no entry, so just 1
		t.Errorf("program recorded %d failures, want 1", stats[0].Serve.Failures)
	}

	if !st.DeleteProgram("bfs") {
		t.Error("DeleteProgram(bfs) = false")
	}
	if st.DeleteProgram("bfs") {
		t.Error("second DeleteProgram(bfs) = true")
	}
}

// TestStoredProgramScalarBindings invokes the stored PageRank form —
// seed vector plus damping/tol scalar bindings on the wire — on both
// backends and demands bit-identity with the in-process run.
func TestStoredProgramScalarBindings(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	a := spmspv.NormalizeColumns(testutil.RandomCSC(rng, 70, 70, 4))
	opt := spmspv.PageRankOptions{Damping: 0.9, Tol: 1e-7, MaxIter: 80}
	opts := []spmspv.Option{spmspv.WithEngineOptions(engineOptions(2))}

	st := spmspv.NewStore(opts...)
	if err := st.Put("g", a); err != nil {
		t.Fatal(err)
	}
	mu, err := st.Load("g")
	if err != nil {
		t.Fatal(err)
	}
	want := spmspv.PageRank(mu, opt)

	ss := newLocalSharded(t, 2, opts...)
	if err := ss.Put("g", a); err != nil {
		t.Fatal(err)
	}

	seed := spmspv.PageRankSeed(a.NumCols, opt.Damping)
	inv := &spmspv.InvokeRequest{
		Args:    map[string]*spmspv.Vector{"seed": seed},
		Scalars: map[string]float64{"damping": opt.Damping, "tol": opt.Tol},
	}
	for label, backend := range map[string]interface {
		PutProgram(string, *spmspv.Program) (*spmspv.ProgramStat, error)
		Invoke(string, *spmspv.InvokeRequest) (*spmspv.ProgramResponse, error)
	}{"store": st, "sharded": ss} {
		if _, err := backend.PutProgram("pagerank", spmspv.PageRankProgram("g", opt, nil)); err != nil {
			t.Fatal(err)
		}
		resp, err := backend.Invoke("pagerank", inv)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		got, err := spmspv.DecodePageRankProgramResponse(resp, a.NumCols)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		comparePageRank(t, label, got, want)
	}
}
