package spmspv

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"spmspv/internal/dataflow"
	"spmspv/internal/perf"
)

// InvokeRequest is the wire body of POST /v1/programs/{name}/invoke:
// everything a stored procedure needs per call — the seed vector(s)
// bound to its input params, the scalar bindings its alpha_refs name,
// and optionally a matrix overriding the program's default. The
// program itself stays server-side, already compiled; repeat callers
// ship kilobytes of seed instead of the op list every time.
type InvokeRequest struct {
	// Matrix overrides the program's default matrix for this call.
	Matrix string `json:"matrix,omitempty"`
	// Args binds vectors to the program's input params by name.
	Args map[string]*Vector `json:"args,omitempty"`
	// Scalars binds values to the program's alpha_ref names.
	Scalars map[string]float64 `json:"scalars,omitempty"`
}

// Validate checks the bindings' own well-formedness (names in the
// param charset, vectors structurally valid); whether they match the
// program's declared params is the interpreter's job, and dimension
// agreement is pinned to the matrix per mult op as always.
func (inv *InvokeRequest) Validate() error {
	if inv.Matrix != "" {
		if err := validRegistryName("matrix", inv.Matrix); err != nil {
			return err
		}
	}
	for name, x := range inv.Args {
		if err := checkParamName(name, "invoke arg", 0); err != nil {
			return err
		}
		if x == nil {
			return fmt.Errorf("spmspv: invoke arg %q is null", name)
		}
		if err := x.Validate(); err != nil {
			return fmt.Errorf("spmspv: invoke arg %q: %w", name, err)
		}
	}
	for name := range inv.Scalars {
		if err := checkParamName(name, "invoke scalar", 0); err != nil {
			return err
		}
	}
	return nil
}

// DecodeInvokeRequest parses a JSON-encoded InvokeRequest.
func DecodeInvokeRequest(data []byte) (*InvokeRequest, error) {
	var inv InvokeRequest
	if err := json.Unmarshal(data, &inv); err != nil {
		return nil, fmt.Errorf("spmspv: decoding invoke request: %w", err)
	}
	return &inv, nil
}

// ProgramStat is one stored procedure's registry entry as reported by
// GET /v1/programs: identity, size, default matrix, and the
// per-program serving counters (invokes, errors, latency).
type ProgramStat struct {
	Name   string             `json:"name"`
	Ops    int                `json:"ops"`
	Matrix string             `json:"matrix,omitempty"`
	Serve  perf.ServeSnapshot `json:"serve"`
}

// programEntry pairs a stored procedure's source (served back by GET)
// with its compiled form — validated and lowered ONCE at registration,
// so warm invoke traffic runs zero compilations (pinned by
// dataflow.Compilations in tests, the program-level analogue of the
// store's zero-plan-recompile contract) — and its serving counters.
type programEntry struct {
	src      *Program
	compiled *dataflow.Program
	stats    *perf.ServeStats
}

// programRegistry is the named stored-procedure registry embedded in
// both Store and ShardedStore: the registry itself is backend-agnostic
// (a compiled program is pure dataflow), and only the mult hook passed
// to invoke differs between the in-process and scattered executions.
type programRegistry struct {
	mu    sync.RWMutex
	progs map[string]*programEntry
}

func (pr *programRegistry) put(name string, p *Program) (*ProgramStat, error) {
	if err := validRegistryName("program", name); err != nil {
		return nil, wireErrorf(CodeBadRequest, "%v", err)
	}
	cp, err := compileProgram(p)
	if err != nil {
		return nil, wireErrorf(CodeInvalidRequest, "%v", err)
	}
	dataflow.CountCompilation()
	e := &programEntry{src: p, compiled: cp, stats: &perf.ServeStats{}}
	pr.mu.Lock()
	if pr.progs == nil {
		pr.progs = make(map[string]*programEntry)
	}
	pr.progs[name] = e
	pr.mu.Unlock()
	return &ProgramStat{Name: name, Ops: len(p.Ops), Matrix: p.Matrix}, nil
}

func (pr *programRegistry) entryOf(name string) (*programEntry, error) {
	pr.mu.RLock()
	e := pr.progs[name]
	pr.mu.RUnlock()
	if e == nil {
		return nil, wireErrorf(CodeUnknownProgram, "unknown program %q", name)
	}
	return e, nil
}

func (pr *programRegistry) get(name string) (*Program, error) {
	e, err := pr.entryOf(name)
	if err != nil {
		return nil, err
	}
	return e.src, nil
}

func (pr *programRegistry) delete(name string) bool {
	pr.mu.Lock()
	_, ok := pr.progs[name]
	delete(pr.progs, name)
	pr.mu.Unlock()
	return ok
}

func (pr *programRegistry) list() []ProgramStat {
	pr.mu.RLock()
	out := make([]ProgramStat, 0, len(pr.progs))
	for name, e := range pr.progs {
		out = append(out, ProgramStat{
			Name:   name,
			Ops:    len(e.src.Ops),
			Matrix: e.src.Matrix,
			Serve:  e.stats.Snapshot(),
		})
	}
	pr.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// invoke runs a stored procedure: entry lookup, binding validation,
// then execution of the ALREADY-compiled program — no validation or
// lowering on the hot path — under the backend's mult hook, with
// wall-clock and error accounting on the program's own counters.
func (pr *programRegistry) invoke(name string, inv *InvokeRequest, mult progMultFunc) (*ProgramResponse, error) {
	e, err := pr.entryOf(name)
	if err != nil {
		return nil, err
	}
	if inv == nil {
		inv = &InvokeRequest{}
	}
	if err := inv.Validate(); err != nil {
		e.stats.Observe(0, true)
		return nil, wireErrorf(CodeInvalidRequest, "%v", err)
	}
	t := time.Now()
	resp, err := execCompiled(e.compiled, inv, mult)
	e.stats.Observe(time.Since(t), err != nil)
	return resp, err
}

// PutProgram registers (or replaces) a stored procedure: the program
// is validated and compiled here, once, and every later invoke reuses
// the compiled form. The returned stat carries the accepted size.
func (st *Store) PutProgram(name string, p *Program) (*ProgramStat, error) {
	return st.programs.put(name, p)
}

// GetProgram returns a stored procedure's source form.
func (st *Store) GetProgram(name string) (*Program, error) { return st.programs.get(name) }

// DeleteProgram removes a stored procedure, reporting whether it
// existed.
func (st *Store) DeleteProgram(name string) bool { return st.programs.delete(name) }

// Programs lists the stored procedures with their serving counters,
// sorted by name.
func (st *Store) Programs() []ProgramStat { return st.programs.list() }

// Invoke runs a stored procedure against the store's matrices with the
// request's bindings — the in-process form of
// POST /v1/programs/{name}/invoke.
func (st *Store) Invoke(name string, inv *InvokeRequest) (*ProgramResponse, error) {
	return st.programs.invoke(name, inv, st.progMult())
}

// InvokeContext is Invoke with a pre-flight context check.
func (st *Store) InvokeContext(ctx context.Context, name string, inv *InvokeRequest) (*ProgramResponse, error) {
	if err := ctx.Err(); err != nil {
		return nil, wireErrorf(CodeInternal, "%v", err)
	}
	return st.Invoke(name, inv)
}

// PutProgram registers (or replaces) a stored procedure on the
// coordinator; loops run here, each body op scattering across the
// shards (see Run).
func (ss *ShardedStore) PutProgram(name string, p *Program) (*ProgramStat, error) {
	return ss.programs.put(name, p)
}

// GetProgram returns a stored procedure's source form.
func (ss *ShardedStore) GetProgram(name string) (*Program, error) { return ss.programs.get(name) }

// DeleteProgram removes a stored procedure, reporting whether it
// existed.
func (ss *ShardedStore) DeleteProgram(name string) bool { return ss.programs.delete(name) }

// Programs lists the stored procedures with their serving counters,
// sorted by name.
func (ss *ShardedStore) Programs() []ProgramStat { return ss.programs.list() }

// Invoke runs a stored procedure with every mult op scattered across
// the shards and everything else — scalar ops, loops, convergence
// exits — executed on the coordinator.
func (ss *ShardedStore) Invoke(name string, inv *InvokeRequest) (*ProgramResponse, error) {
	return ss.programs.invoke(name, inv, ss.progMult())
}

// InvokeContext is Invoke with a pre-flight context check.
func (ss *ShardedStore) InvokeContext(ctx context.Context, name string, inv *InvokeRequest) (*ProgramResponse, error) {
	if err := ctx.Err(); err != nil {
		return nil, wireErrorf(CodeInternal, "%v", err)
	}
	return ss.Invoke(name, inv)
}
