// Tests for the descriptor-driven Mult/MultBatch surface: the full
// Desc combination sweep against the sequential oracle for every
// registered engine, the Desc JSON wire contract, and the compiled
// plan cache.
package spmspv_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	spmspv "spmspv"
	"spmspv/internal/baselines"
	"spmspv/internal/sparse"
	"spmspv/internal/testutil"
)

// descOracle computes the expected result of one descriptor-driven
// multiply through the sequential reference: plain product, mask
// filter, then accumulate with the output's prior contents.
func descOracle(a *spmspv.Matrix, x *spmspv.Vector, sr spmspv.Semiring,
	mask *spmspv.BitVector, complement bool, accum *spmspv.Vector) *spmspv.Vector {
	want := baselines.Reference(a, x, sr)
	if mask != nil {
		sparse.FilterMaskInPlace(want, mask, complement)
	}
	if accum != nil {
		want = spmspv.EwiseAdd(want, accum, sr.Add)
	}
	return want
}

// TestMultDescMatrix sweeps every descriptor combination — mask ×
// complement × accumulate × output representation × batch width — over
// every registered engine and checks each against the sequential
// oracle. This is the acceptance property of the API redesign: one
// entry point, every capability, every engine, one oracle.
func TestMultDescMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	m, n := spmspv.Index(350), spmspv.Index(300)
	a := testutil.RandomCSC(rng, m, n, 4)
	semirings := []spmspv.Semiring{spmspv.Arithmetic, spmspv.MinSelect2nd, spmspv.MinPlus}

	type combo struct {
		masked, complement, accum bool
		output                    spmspv.OutputMode
		batch                     int
	}
	var combos []combo
	for _, masked := range []bool{false, true} {
		for _, complement := range []bool{false, true} {
			if complement && !masked {
				continue
			}
			for _, accum := range []bool{false, true} {
				for _, output := range []spmspv.OutputMode{spmspv.OutputAuto, spmspv.OutputList, spmspv.OutputBitmap} {
					for _, batch := range []int{1, 3} {
						combos = append(combos, combo{masked, complement, accum, output, batch})
					}
				}
			}
		}
	}

	for _, alg := range spmspv.Algorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			mu, err := spmspv.NewMultiplier(a,
				spmspv.WithAlgorithm(alg),
				spmspv.WithEngineOptions(engineOptions(2)))
			if err != nil {
				t.Fatal(err)
			}
			for ci, c := range combos {
				sr := semirings[ci%len(semirings)]
				label := fmt.Sprintf("combo %d (%+v, %s)", ci, c, sr.Name)

				// Per-slot inputs, masks and accumulators; slot 1 of a
				// batch runs unmasked to exercise mixed mask slots.
				xs := make([]*spmspv.Frontier, c.batch)
				ys := make([]*spmspv.Frontier, c.batch)
				masks := make([]*spmspv.BitVector, c.batch)
				wants := make([]*spmspv.Vector, c.batch)
				for q := 0; q < c.batch; q++ {
					f := 1 + (ci*31+q*97)%int(n)
					x := testutil.RandomVector(rng, n, f, q%2 == 0)
					xs[q] = spmspv.NewFrontier(x)
					var mk *spmspv.BitVector
					if c.masked && !(c.batch > 1 && q == 1) {
						mk = randomMask(rng, m, 0.4)
					}
					masks[q] = mk
					var accum *spmspv.Vector
					if c.accum {
						accum = testutil.RandomVector(rng, m, 1+ci%40, true)
						ys[q] = spmspv.NewFrontier(accum.Clone())
					} else {
						ys[q] = spmspv.NewOutputFrontier(m)
					}
					wants[q] = descOracle(a, x, sr, mk, c.complement, accum)
				}

				d := spmspv.Desc{
					Complement: c.complement,
					Accum:      c.accum,
					Output:     c.output,
				}
				if c.batch == 1 {
					d.Mask = masks[0]
					mu.Mult(xs[0], ys[0], sr, d)
				} else {
					if c.masked {
						d.Masks = masks
					}
					d.BatchWidth = c.batch
					mu.MultBatch(xs, ys, sr, d)
				}

				for q := 0; q < c.batch; q++ {
					if !ys[q].List().EqualValues(wants[q], 1e-9) {
						t.Fatalf("%s slot %d: Mult diverged from oracle", label, q)
					}
					switch c.output {
					case spmspv.OutputBitmap:
						if !ys[q].HasBits() {
							t.Fatalf("%s slot %d: OutputBitmap did not materialize the bitmap", label, q)
						}
					case spmspv.OutputList:
						if ys[q].HasBits() {
							t.Fatalf("%s slot %d: OutputList materialized a bitmap", label, q)
						}
					}
					checkBitmapMirrorsList(t, ys[q], label)
				}
			}
		})
	}
}

// TestMultBatchNativeBitmaps pins the batch-output satellite: a
// MultBatch through a batch-output engine (bucket, hybrid) leaves a
// NATIVELY emitted bitmap on every slot — no slot's bitmap is lazy and
// no output conversion ever runs, masked or not.
func TestMultBatchNativeBitmaps(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	m := spmspv.Index(600)
	a := testutil.RandomCSC(rng, m, m, 5)
	for _, alg := range []spmspv.Algorithm{spmspv.Bucket, spmspv.Hybrid} {
		for _, masked := range []bool{false, true} {
			mu, err := spmspv.NewMultiplier(a,
				spmspv.WithAlgorithm(alg), spmspv.WithEngineOptions(engineOptions(2)))
			if err != nil {
				t.Fatal(err)
			}
			const k = 4
			xs := make([]*spmspv.Frontier, k)
			ys := make([]*spmspv.Frontier, k)
			d := spmspv.Desc{}
			if masked {
				d.Masks = make([]*spmspv.BitVector, k)
				d.Complement = true
			}
			for q := 0; q < k; q++ {
				// Densities spread across the hybrid switch point so both
				// directions emit into the same batch.
				xs[q] = spmspv.NewFrontier(testutil.RandomVector(rng, m, 5+q*180, true))
				ys[q] = spmspv.NewOutputFrontier(m)
				if masked {
					d.Masks[q] = randomMask(rng, m, 0.3)
				}
			}
			spmspv.ResetFrontierStats()
			mu.MultBatch(xs, ys, spmspv.MinSelect2nd, d)
			for q := 0; q < k; q++ {
				if !ys[q].HasBits() {
					t.Fatalf("%v masked=%v slot %d: batch output bitmap not emitted natively", alg, masked, q)
				}
				checkBitmapMirrorsList(t, ys[q], fmt.Sprintf("%v masked=%v slot %d", alg, masked, q))
			}
			outConv, native := spmspv.FrontierOutputStats()
			if outConv != 0 {
				t.Fatalf("%v masked=%v: %d output conversions, want 0", alg, masked, outConv)
			}
			if native < k {
				t.Fatalf("%v masked=%v: only %d native outputs for a %d-slot batch", alg, masked, native, k)
			}
		}
	}
}

// TestMultTranspose pins Desc.Transpose as the §II-A left
// multiplication: identical to multiplying the explicit transpose, and
// to the deprecated MultiplyLeft.
func TestMultTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := testutil.RandomCSC(rng, 200, 320, 4)
	x := testutil.RandomVector(rng, 200, 60, true)
	mu, err := spmspv.NewMultiplier(a, spmspv.WithEngineOptions(engineOptions(2)))
	if err != nil {
		t.Fatal(err)
	}
	want := baselines.Reference(a.Transpose(), x, spmspv.Arithmetic)

	yf := spmspv.NewOutputFrontier(a.NumCols)
	mu.Mult(spmspv.NewFrontier(x), yf, spmspv.Arithmetic, spmspv.Desc{Transpose: true})
	if !yf.List().EqualValues(want, 1e-9) {
		t.Fatal("Mult with Transpose diverged from explicit-transpose oracle")
	}
	if legacy := mu.MultiplyLeft(x, spmspv.Arithmetic); !legacy.EqualValues(want, 1e-9) {
		t.Fatal("MultiplyLeft diverged from Mult with Transpose")
	}
}

// TestMultSemiringByName pins the wire rule: a zero semiring argument
// resolves Desc.Semiring by name; an explicit argument wins over a
// conflicting name.
func TestMultSemiringByName(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	a := testutil.RandomCSC(rng, 150, 150, 3)
	x := testutil.RandomVector(rng, 150, 40, true)
	mu, err := spmspv.NewMultiplier(a, spmspv.WithSortOutput(true))
	if err != nil {
		t.Fatal(err)
	}
	want := baselines.Reference(a, x, spmspv.MinPlus)

	yf := spmspv.NewOutputFrontier(150)
	mu.Mult(spmspv.NewFrontier(x), yf, spmspv.Semiring{}, spmspv.Desc{Semiring: "minplus"})
	if !yf.List().EqualValues(want, 1e-9) {
		t.Fatal("named semiring diverged from MinPlus oracle")
	}
	// Explicit argument wins over the (different) name.
	mu.Mult(spmspv.NewFrontier(x), yf, spmspv.MinPlus, spmspv.Desc{Semiring: "arithmetic"})
	if !yf.List().EqualValues(want, 1e-9) {
		t.Fatal("explicit semiring argument did not win over Desc.Semiring")
	}
}

// TestNewMultiplierErrors pins the constructor redesign: the functional-
// options constructor reports failure where NewWithAlgorithm silently
// fell back.
func TestNewMultiplierErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	a := testutil.RandomCSC(rng, 50, 50, 3)
	if _, err := spmspv.NewMultiplier(nil); err == nil {
		t.Fatal("NewMultiplier(nil) did not error")
	}
	if _, err := spmspv.NewMultiplier(a, spmspv.WithAlgorithm(spmspv.Algorithm(999))); err == nil {
		t.Fatal("NewMultiplier with unregistered algorithm did not error")
	}
	mu, err := spmspv.NewMultiplier(a, spmspv.WithAlgorithm(spmspv.Hybrid),
		spmspv.WithThreads(2), spmspv.WithSortOutput(true), spmspv.WithHybridThreshold(0.25))
	if err != nil {
		t.Fatal(err)
	}
	if mu.Algorithm() != spmspv.Hybrid {
		t.Fatalf("constructed %v, want Hybrid", mu.Algorithm())
	}
}

// TestDescJSONRoundTrip pins the wire contract on representative
// descriptors: marshal → unmarshal preserves the descriptor, including
// the mask's support and values.
func TestDescJSONRoundTrip(t *testing.T) {
	mask := spmspv.NewBitVector(40)
	sel := spmspv.NewVector(40, 0)
	sel.Append(3, 1.5)
	sel.Append(17, -2)
	mask.SetFrom(sel)
	descs := []spmspv.Desc{
		{},
		{Complement: true, Mask: mask},
		{Accum: true, Transpose: true, Output: spmspv.OutputBitmap, BatchWidth: 4, Semiring: "bfs"},
		{Masks: []*spmspv.BitVector{mask, nil, mask}, Complement: true, Output: spmspv.OutputList},
	}
	for i, d := range descs {
		data, err := json.Marshal(d)
		if err != nil {
			t.Fatalf("desc %d: marshal: %v", i, err)
		}
		var got spmspv.Desc
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("desc %d: unmarshal: %v", i, err)
		}
		if got.Shape() != d.Shape() {
			t.Fatalf("desc %d: shape changed across JSON: %+v → %+v", i, d.Shape(), got.Shape())
		}
		data2, err := json.Marshal(got)
		if err != nil {
			t.Fatalf("desc %d: re-marshal: %v", i, err)
		}
		if string(data) != string(data2) {
			t.Fatalf("desc %d: JSON not stable across round trip:\n%s\n%s", i, data, data2)
		}
		if d.Mask != nil {
			if got.Mask == nil || got.Mask.Count() != d.Mask.Count() {
				t.Fatalf("desc %d: mask lost in round trip", i)
			}
			if v, ok := got.Mask.Get(3); !ok || v != 1.5 {
				t.Fatalf("desc %d: mask value lost in round trip", i)
			}
		}
	}
}

// FuzzDescJSON round-trips fuzz-constructed descriptors through JSON:
// whatever the fields, marshal → unmarshal → marshal must be stable
// and shape-preserving.
func FuzzDescJSON(f *testing.F) {
	f.Add(false, false, false, 0, 0, "arithmetic", uint16(8), uint64(5))
	f.Add(true, true, true, 2, 7, "bfs", uint16(64), uint64(0xdeadbeef))
	f.Add(true, false, false, 1, 3, "", uint16(0), uint64(0))
	f.Fuzz(func(t *testing.T, complement, accum, transpose bool, output, batchWidth int, srName string, maskN uint16, maskBits uint64) {
		d := spmspv.Desc{
			Complement: complement,
			Accum:      accum,
			Transpose:  transpose,
			Output:     spmspv.OutputMode(((output % 3) + 3) % 3),
			BatchWidth: batchWidth,
			Semiring:   srName,
		}
		if maskN > 0 {
			mask := spmspv.NewBitVector(spmspv.Index(maskN))
			sel := spmspv.NewVector(spmspv.Index(maskN), 0)
			for i := 0; i < 64 && i < int(maskN); i++ {
				if maskBits&(1<<i) != 0 {
					sel.Append(spmspv.Index(i), float64(i))
				}
			}
			mask.SetFrom(sel)
			d.Mask = mask
		}
		data, err := json.Marshal(d)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var got spmspv.Desc
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("unmarshal of own output: %v\n%s", err, data)
		}
		if got.Shape() != d.Shape() {
			t.Fatalf("shape changed across JSON: %+v → %+v", d.Shape(), got.Shape())
		}
		// The encoding is stable from the first round trip on (the
		// first marshal may canonicalize, e.g. invalid UTF-8 in the
		// semiring name becomes U+FFFD).
		data2, err := json.Marshal(got)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		var got2 spmspv.Desc
		if err := json.Unmarshal(data2, &got2); err != nil {
			t.Fatalf("unmarshal of round-tripped output: %v\n%s", err, data2)
		}
		if got2.Shape() != got.Shape() {
			t.Fatalf("shape changed on second round trip: %+v → %+v", got.Shape(), got2.Shape())
		}
		data3, err := json.Marshal(got2)
		if err != nil {
			t.Fatalf("marshal after round trip: %v", err)
		}
		if !reflect.DeepEqual(data2, data3) {
			t.Fatalf("JSON not stable after first round trip:\n%s\n%s", data2, data3)
		}
	})
}
